"""Wire protocol v2 codec: byte-stable round-trips and corruption diagnostics.

The acceptance properties of the codec (hypothesis-tested here):

1. **Round-trip**: every message type in :mod:`repro.core.messages` — and
   every generic primitive value — decodes back to an equal object.
2. **Byte stability**: re-encoding a decoded message reproduces the exact
   original frame (canonical map-key and set-element order), so frames can
   be compared, cached and hashed by bytes.
3. **Diagnostics**: corrupted frames, truncations and foreign protocol
   versions raise typed errors whose messages say what went wrong — and a
   v1 length-prefixed pickle frame is named as such.

Plus the grep-enforced guarantee that pickle is gone from every runtime
wire path.
"""

import io
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import codec
from repro.core.messages import (
    TerminationNotice,
    Token,
    TokenEntry,
    VerdictAnnouncement,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

# -- hypothesis strategies ---------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
small_ints = st.integers(min_value=-(2**40), max_value=2**40)
atom_names = st.text(
    alphabet="PQpq0123456789._", min_size=1, max_size=8
)
letters = st.frozensets(atom_names, max_size=3)

primitive_values = st.one_of(
    st.none(),
    st.booleans(),
    small_ints,
    finite_floats,
    st.text(max_size=20),
    st.binary(max_size=20),
)

generic_values = st.recursive(
    primitive_values,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.sets(small_ints, max_size=4),
    ),
    max_leaves=12,
)


@st.composite
def token_entries(draw, num_processes):
    """One :class:`TokenEntry` whose vectors all have *num_processes* slots."""
    n = num_processes
    int_vec = st.lists(
        st.integers(min_value=-1, max_value=50), min_size=n, max_size=n
    )
    guard = draw(st.dictionaries(atom_names, st.booleans(), max_size=3))
    conjuncts = draw(
        st.lists(
            st.dictionaries(atom_names, st.booleans(), max_size=2),
            min_size=n,
            max_size=n,
        )
    )
    sn_keys = st.integers(min_value=0, max_value=30)
    scanned_letters = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=n - 1),
            st.dictionaries(sn_keys, letters, max_size=2),
            max_size=2,
        )
    )
    scanned_vcs = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=n - 1),
            st.dictionaries(
                sn_keys,
                st.lists(
                    st.integers(min_value=0, max_value=50),
                    min_size=n,
                    max_size=n,
                ).map(tuple),
                max_size=2,
            ),
            max_size=2,
        )
    )
    return TokenEntry(
        transition_id=draw(st.one_of(st.none(), st.integers(0, 500))),
        guard=guard,
        conjuncts=conjuncts,
        start_cut=draw(int_vec),
        cut=draw(int_vec),
        depend=draw(int_vec),
        min_positions=draw(int_vec),
        satisfied=draw(st.lists(st.booleans(), min_size=n, max_size=n)),
        letters=draw(
            st.dictionaries(
                st.integers(min_value=0, max_value=n - 1), letters, max_size=n
            )
        ),
        scanned_letters=scanned_letters,
        scanned_vcs=scanned_vcs,
        eval=draw(st.one_of(st.none(), st.booleans())),
        parked_on=draw(st.one_of(st.none(), st.integers(0, n - 1))),
        waiting_for=draw(st.sets(st.integers(0, n - 1), max_size=n)),
    )


@st.composite
def tokens(draw):
    """One :class:`Token` with 0–3 entries over a shared process count."""
    n = draw(st.integers(min_value=1, max_value=4))
    entries = draw(st.lists(token_entries(n), max_size=3))
    return Token(
        parent_process=draw(st.integers(0, n - 1)),
        parent_view=draw(st.integers(0, 100)),
        parent_event_sn=draw(st.integers(-1, 100)),
        entries=entries,
        token_id=draw(st.integers(1, 10**6)),
        hops=draw(st.integers(0, 1000)),
    )


termination_notices = st.builds(
    TerminationNotice,
    process=st.integers(0, 16),
    final_event_sn=st.integers(-1, 10**4),
)

verdict_announcements = st.builds(
    VerdictAnnouncement,
    origin=st.integers(0, 16),
    verdict=st.sampled_from(["⊤", "⊥", "?"]),
)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(message=tokens(), due=finite_floats)
    def test_token_round_trips_byte_stably(self, message, due):
        frame = codec.encode_wire(due, message)
        type_tag, payload = codec.split_frame(frame)
        assert type_tag == codec.TYPE_TOKEN
        decoded_due, decoded = codec.decode_wire(type_tag, payload)
        assert decoded_due == due
        assert decoded == message
        assert codec.encode_wire(decoded_due, decoded) == frame

    @settings(max_examples=100, deadline=None)
    @given(message=termination_notices, due=finite_floats)
    def test_termination_round_trips_byte_stably(self, message, due):
        frame = codec.encode_wire(due, message)
        type_tag, payload = codec.split_frame(frame)
        assert type_tag == codec.TYPE_TERMINATION
        decoded_due, decoded = codec.decode_wire(type_tag, payload)
        assert (decoded_due, decoded) == (due, message)
        assert codec.encode_wire(decoded_due, decoded) == frame

    @settings(max_examples=100, deadline=None)
    @given(message=verdict_announcements, due=finite_floats)
    def test_verdict_announcement_round_trips_byte_stably(self, message, due):
        frame = codec.encode_wire(due, message)
        type_tag, payload = codec.split_frame(frame)
        assert type_tag == codec.TYPE_VERDICT
        decoded_due, decoded = codec.decode_wire(type_tag, payload)
        assert (decoded_due, decoded) == (due, message)
        assert codec.encode_wire(decoded_due, decoded) == frame

    def test_verdict_announcement_survives_verdict_reconstruction(self):
        from repro.ltl.verdict import Verdict

        for verdict in (Verdict.TOP, Verdict.BOTTOM):
            message = VerdictAnnouncement(2, str(verdict))
            _, body = codec.encode_message(message)
            decoded = codec.decode_message(codec.TYPE_VERDICT, body)
            # the worker rebuilds the enum from the gossiped string form
            assert Verdict(decoded.verdict) is verdict

    def test_trailing_bytes_in_verdict_body_are_rejected(self):
        _, body = codec.encode_message(VerdictAnnouncement(1, "⊤"))
        with pytest.raises(codec.CorruptFrameError, match="trailing"):
            codec.decode_message(codec.TYPE_VERDICT, body + b"\x00")

    @settings(max_examples=150, deadline=None)
    @given(value=generic_values)
    def test_generic_values_round_trip_byte_stably(self, value):
        frame = codec.encode_wire(0.0, value)
        type_tag, payload = codec.split_frame(frame)
        assert type_tag == codec.TYPE_VALUE
        _, decoded = codec.decode_wire(type_tag, payload)
        assert decoded == value
        assert codec.encode_wire(0.0, decoded) == frame

    @settings(max_examples=100, deadline=None)
    @given(
        mapping=st.dictionaries(
            st.text(max_size=10), generic_values, max_size=5
        )
    )
    def test_control_frames_round_trip(self, mapping):
        frame = codec.encode_control(mapping)
        type_tag, payload = codec.split_frame(frame)
        assert type_tag == codec.TYPE_CONTROL
        assert codec.decode_control(payload) == mapping

    def test_map_insertion_order_is_canonicalized(self):
        # two dicts equal as mappings but built in opposite insertion order
        # must produce the identical frame — byte stability across peers
        ab = codec.encode_wire(0.0, {"a": 1, "b": 2})
        ba = codec.encode_wire(0.0, {"b": 2, "a": 1})
        assert ab == ba
        assert codec.encode_wire(0.0, {1, 2, 3}) == codec.encode_wire(
            0.0, {3, 2, 1}
        )

    def test_blocking_stream_round_trip(self):
        buffer = io.BytesIO()
        codec.write_frame(buffer, 1.5, TerminationNotice(0, 4))
        codec.write_frame(buffer, 2.5, "done")
        buffer.seek(0)
        assert codec.read_frame(buffer) == (1.5, TerminationNotice(0, 4))
        assert codec.read_frame(buffer) == (2.5, "done")
        assert codec.read_frame(buffer) is None  # clean EOF between frames


class TestDiagnostics:
    def test_bad_magic_names_the_v1_framing(self):
        header = b"\x00\x00\x00\x2a" + b"\x80\x04\x95\x00"  # v1: length + pickle
        with pytest.raises(
            codec.CorruptFrameError,
            match="bad frame magic.*v1 length-prefixed pickle framing is no "
            "longer supported",
        ):
            codec.decode_header(header[: codec.HEADER.size])

    @pytest.mark.parametrize("version", [0, 1, 3, 255])
    def test_foreign_version_reports_both_versions(self, version):
        header = codec.HEADER.pack(codec.MAGIC, version, codec.TYPE_VALUE, 0)
        with pytest.raises(
            codec.ProtocolVersionError,
            match=f"peer speaks wire protocol version {version}, this node "
            f"speaks only version {codec.PROTOCOL_VERSION}",
        ) as excinfo:
            codec.decode_header(header)
        assert excinfo.value.peer_version == version

    def test_short_header_reported(self):
        with pytest.raises(codec.CorruptFrameError, match="short header: 3 of 8"):
            codec.decode_header(b"RW\x02")

    def test_frame_length_mismatch_reported(self):
        frame = codec.encode_wire(0.0, "hello")
        with pytest.raises(
            codec.CorruptFrameError, match="length mismatch.*announces"
        ):
            codec.split_frame(frame[:-1])

    def test_trailing_bytes_rejected(self):
        type_tag, body = codec.encode_message(TerminationNotice(1, 2))
        with pytest.raises(
            codec.CorruptFrameError, match="2 trailing bytes"
        ):
            codec.decode_message(type_tag, body + b"\x00\x00")

    def test_unknown_type_tag_rejected(self):
        with pytest.raises(
            codec.CorruptFrameError, match="unknown message type 0x7f"
        ):
            codec.decode_message(0x7F, b"")

    def test_payload_too_short_for_due_instant(self):
        with pytest.raises(
            codec.CorruptFrameError, match="cannot hold the.*delivery instant"
        ):
            codec.decode_wire(codec.TYPE_VALUE, b"\x00\x00")

    def test_stream_truncated_mid_payload(self):
        frame = codec.encode_wire(0.0, "hello")
        with pytest.raises(codec.CorruptFrameError, match="payload bytes"):
            codec.read_frame(io.BytesIO(frame[:-2]))

    def test_stream_truncated_mid_header(self):
        with pytest.raises(codec.CorruptFrameError, match="header bytes"):
            codec.read_frame(io.BytesIO(b"RW\x02"))

    def test_control_frame_must_carry_a_mapping(self):
        out = bytearray()
        codec._w_value(out, [1, 2, 3])
        with pytest.raises(
            codec.CorruptFrameError, match="carries list, expected a mapping"
        ):
            codec.decode_control(bytes(out))

    def test_errors_are_value_errors(self):
        # callers that predate the codec catch ValueError; keep that working
        assert issubclass(codec.CodecError, ValueError)
        assert issubclass(codec.CorruptFrameError, codec.CodecError)
        assert issubclass(codec.ProtocolVersionError, codec.CodecError)


class TestNoPickleOnWirePaths:
    @pytest.mark.parametrize("package", ["runtime", "cluster", "core"])
    def test_wire_packages_never_import_pickle(self, package):
        """Acceptance: pickle is gone from every runtime wire path.

        Checked at the import level (docstrings may still *mention* the
        retired v1 pickle framing): no module under the wire packages may
        import or refer to the ``pickle`` family.
        """
        import ast

        offenders = []
        for path in sorted((REPO_ROOT / "src" / "repro" / package).glob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                else:
                    continue
                if any(name.partition(".")[0] in ("pickle", "cPickle", "dill")
                       for name in names):
                    offenders.append(path.name)
        assert not offenders, (
            f"pickle imported on the wire path: repro/{package}/{offenders}"
        )
