"""Tests for computation slicing and conjunctive predicate detection."""

import pytest

from repro.distributed import ComputationLattice, running_example, running_example_registry
from repro.ltl import Proposition, PropositionRegistry
from repro.slicing import Slice, least_consistent_cut, satisfying_cuts


@pytest.fixture(scope="module")
def example():
    return running_example()


@pytest.fixture(scope="module")
def registry():
    return running_example_registry()


class TestLeastConsistentCut:
    def test_empty_guard_returns_start(self, example, registry):
        assert least_consistent_cut(example, registry, {}) == (0, 0)
        assert least_consistent_cut(example, registry, {}, start=(2, 2)) == (2, 2)

    def test_paper_predicate_x1_ge_5_and_x2_ge_15(self, example, registry):
        """The sub-lattice satisfying (x1>=5 & x2>=15) starts at <e1_2, e2_2>."""
        guard = {"x1>=5": True, "x2>=15": True}
        assert least_consistent_cut(example, registry, guard) == (2, 2)

    def test_local_predicate_only(self, example, registry):
        assert least_consistent_cut(example, registry, {"x1>=5": True}) == (2, 0)
        assert least_consistent_cut(example, registry, {"x2>=15": True}) == (1, 2)

    def test_negated_conjunct(self, example, registry):
        # x1 >= 5 and x1 != 10 -> exactly after e1_2
        guard = {"x1>=5": True, "x1=10": False}
        assert least_consistent_cut(example, registry, guard) == (2, 0)

    def test_unsatisfiable_guard_returns_none(self, example, registry):
        # x1 = 10 and x1 < 5 can never hold together
        guard = {"x1>=5": False, "x1=10": True}
        assert least_consistent_cut(example, registry, guard) is None

    def test_start_beyond_satisfaction_advances_monotonically(self, example, registry):
        guard = {"x1=10": True}
        assert least_consistent_cut(example, registry, guard, start=(1, 1)) == (3, 1)

    def test_result_is_least(self, example, registry):
        """The returned cut is dominated by every satisfying cut above start."""
        guard = {"x1>=5": True, "x2>=15": True}
        least = least_consistent_cut(example, registry, guard)
        for cut in satisfying_cuts(example, registry, guard):
            assert all(l <= c for l, c in zip(least, cut))

    def test_result_satisfies_guard_and_is_consistent(self, example, registry):
        for guard in [
            {"x1>=5": True},
            {"x1=10": True},
            {"x2>=15": True, "x1=10": True},
            {"x1>=5": True, "x2>=15": False},
        ]:
            cut = least_consistent_cut(example, registry, guard)
            assert cut is not None
            assert example.is_consistent_cut(cut)
            letter = registry.letter_of(example.global_state(cut))
            assert all((atom in letter) == value for atom, value in guard.items())

    def test_bad_start_arity(self, example, registry):
        with pytest.raises(ValueError):
            least_consistent_cut(example, registry, {}, start=(0, 0, 0))


class TestSatisfyingCuts:
    def test_matches_lattice_filter(self, example, registry):
        guard = {"x1>=5": True, "x2>=15": True}
        cuts = satisfying_cuts(example, registry, guard)
        lattice = ComputationLattice.from_computation(example)
        expected = [
            cut
            for cut in lattice.cuts()
            if registry.letter_of(example.global_state(cut))
            >= frozenset({"x1>=5", "x2>=15"})
        ]
        assert sorted(cuts) == sorted(expected)

    def test_empty_guard_gives_all_cuts(self, example, registry):
        lattice = ComputationLattice.from_computation(example)
        assert len(satisfying_cuts(example, registry, {})) == len(lattice)


class TestSlice:
    def test_slice_of_satisfiable_predicate(self, example, registry):
        guard = {"x1>=5": True, "x2>=15": True}
        computed = Slice.compute(example, registry, guard)
        assert not computed.is_empty
        assert computed.least == (2, 2)
        # every satisfying cut is in the slice and contains the least cut
        for cut in computed.cuts():
            assert computed.contains(cut)
            assert all(l <= c for l, c in zip(computed.least, cut))

    def test_slice_join_irreducibles_are_satisfying(self, example, registry):
        guard = {"x1>=5": True}
        computed = Slice.compute(example, registry, guard)
        for cut in computed.join_irreducibles:
            assert computed.contains(cut)

    def test_satisfying_cuts_closed_under_join_and_meet(self, example, registry):
        """Conjunctive predicates are regular: their cuts form a sublattice."""
        guard = {"x1>=5": True, "x2>=15": True}
        cuts = satisfying_cuts(example, registry, guard)
        for a in cuts:
            for b in cuts:
                assert ComputationLattice.join(a, b) in cuts
                assert ComputationLattice.meet(a, b) in cuts

    def test_empty_slice(self, example, registry):
        computed = Slice.compute(example, registry, {"x1>=5": False, "x1=10": True})
        assert computed.is_empty
        assert computed.join_irreducibles == []
        assert computed.cuts() == []

    def test_contains_rejects_inconsistent_cut(self, example, registry):
        computed = Slice.compute(example, registry, {"x1>=5": True})
        assert not computed.contains((0, 1))

    def test_slice_example_from_section_4_1(self):
        """Slices for (x1 >= 0 & x2 != 20) in the running example: the
        satisfying cuts are those before x2 becomes 20."""
        example = running_example()
        registry = PropositionRegistry(
            [
                Proposition.comparison("x1>=0", 0, "x1", ">=", 0),
                Proposition.comparison("x2!=20", 1, "x2", "!=", 20),
            ]
        )
        guard = {"x1>=0": True, "x2!=20": True}
        computed = Slice.compute(example, registry, guard)
        assert computed.least == (0, 0)
        cuts = computed.cuts()
        assert (1, 1) in cuts and (2, 1) in cuts
        assert all(cut[1] <= 2 for cut in cuts)
