"""Property-based tests (hypothesis) for the vector-clock layer.

The partial-order laws the monitoring algorithm silently relies on:
irreflexivity and transitivity of happened-before, symmetry of
concurrency, merge being the least upper bound, and the agreement between
clock-level cut consistency and :meth:`Computation.is_consistent_cut`.
The last block pins the soundness contract of ``ClockSkew``: in sound mode
every cut consistent under skewed clocks is consistent under true clocks.
"""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.distributed.clocks import ClockSkew, VectorClock
from repro.distributed.computation import ComputationBuilder
from repro.faults import SKEW_SOUND, ClockSkewSpec, apply_clock_skew

clock_components = st.lists(st.integers(0, 3), min_size=2, max_size=4)


def clock_pairs(draw_sizes=(2, 3, 4)):
    """Same-arity clock tuples (hypothesis can't pair dependent lists inline)."""
    return st.integers(2, 4).flatmap(
        lambda n: st.tuples(
            *(
                st.lists(st.integers(0, 3), min_size=n, max_size=n)
                for _ in range(len(draw_sizes))
            )
        )
    )


# ---------------------------------------------------------------------------
# partial-order laws
# ---------------------------------------------------------------------------
@given(clock_components)
@settings(max_examples=100, deadline=None)
def test_happened_before_is_irreflexive(components):
    clock = VectorClock(components)
    assert not clock < clock
    assert clock <= clock


@given(clock_pairs())
@settings(max_examples=100, deadline=None)
def test_happened_before_is_transitive(triple):
    a, b, c = (VectorClock(components) for components in triple)
    if a < b and b < c:
        assert a < c
    if a <= b and b <= c:
        assert a <= c


@given(clock_pairs())
@settings(max_examples=100, deadline=None)
def test_chained_clocks_are_transitive(triple):
    """Transitivity with the premise forced: b and c built above a."""
    base, d1, d2 = triple
    a = VectorClock(base)
    b = VectorClock(x + y for x, y in zip(base, d1))
    c = VectorClock(x + y + z for x, y, z in zip(base, d1, d2))
    assert a <= b <= c
    if a < b and b < c:
        assert a < c


@given(clock_pairs())
@settings(max_examples=100, deadline=None)
def test_concurrency_is_symmetric(triple):
    a, b, _ = (VectorClock(components) for components in triple)
    assert a.concurrent_with(b) == b.concurrent_with(a)
    if a.concurrent_with(b):
        assert not a <= b and not b <= a


@given(clock_pairs())
@settings(max_examples=100, deadline=None)
def test_order_cases_are_mutually_exclusive(triple):
    a, b, _ = (VectorClock(components) for components in triple)
    cases = [a == b, a < b, b < a, a.concurrent_with(b)]
    assert sum(cases) == 1


@given(clock_pairs())
@settings(max_examples=100, deadline=None)
def test_merge_is_least_upper_bound(triple):
    a, b, c = (VectorClock(components) for components in triple)
    merged = a.merge(b)
    assert a <= merged and b <= merged  # upper bound
    assert merged == b.merge(a)  # commutative
    if a <= c and b <= c:
        assert merged <= c  # least among upper bounds


# ---------------------------------------------------------------------------
# cut consistency: clock layer vs Computation
# ---------------------------------------------------------------------------
def _build_computation(num_processes, script):
    """Interpret a random op script into a valid computation.

    Ops are ``(kind, process, target)`` triples; receives deliver the oldest
    pending message to the target process (skipped while none is pending),
    so every script maps to a structurally valid computation.
    """
    builder = ComputationBuilder([{} for _ in range(num_processes)])
    pending = []  # (message_id, recipient)
    next_message = itertools.count(1)
    for kind, process, target in script:
        process %= num_processes
        target %= num_processes
        if kind == 0:
            builder.internal(process, {})
        elif kind == 1 and target != process:
            message_id = next(next_message)
            builder.send(process, to=target, message_id=message_id)
            pending.append((message_id, target, process))
        elif kind == 2 and pending:
            message_id, recipient, sender = pending.pop(0)
            builder.receive(recipient, frm=sender, message_id=message_id)
    return builder.build()


computation_scripts = st.tuples(
    st.integers(2, 3),
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
        min_size=2,
        max_size=10,
    ),
)


def _all_cuts(computation):
    return itertools.product(
        *(range(len(events) + 1) for events in computation.events)
    )


def _merged_frontier(computation, cut):
    merged = VectorClock.zero(computation.num_processes)
    for event in computation.frontier_events(cut):
        if event is not None:
            merged = merged.merge(event.vc)
    return merged


@given(computation_scripts)
@settings(max_examples=60, deadline=None)
def test_cut_clock_consistency_agrees_with_computation(case):
    """A cut is consistent iff its merged frontier clock is below its
    cut clock — the clock-layer formulation of Definition 4."""
    num_processes, script = case
    computation = _build_computation(num_processes, script)
    for cut in _all_cuts(computation):
        clock_consistent = _merged_frontier(computation, cut) <= (
            computation.cut_clock(cut)
        )
        assert computation.is_consistent_cut(cut) == clock_consistent


# ---------------------------------------------------------------------------
# ClockSkew: the soundness contract
# ---------------------------------------------------------------------------
@given(computation_scripts, st.integers(0, 1 << 16))
@settings(max_examples=40, deadline=None)
def test_sound_skew_only_shrinks_the_consistent_cut_set(case, seed):
    num_processes, script = case
    computation = _build_computation(num_processes, script)
    spec = ClockSkewSpec(mode=SKEW_SOUND, rate=0.5, magnitude=2, seed=seed)
    skewed, _ = apply_clock_skew(computation, spec)
    for cut in _all_cuts(computation):
        if skewed.is_consistent_cut(cut):
            assert computation.is_consistent_cut(cut)


@given(computation_scripts, st.integers(0, 1 << 16))
@settings(max_examples=40, deadline=None)
def test_skew_preserves_event_invariants(case, seed):
    num_processes, script = case
    computation = _build_computation(num_processes, script)
    spec = ClockSkewSpec(mode=SKEW_SOUND, rate=1.0, magnitude=3, seed=seed)
    skewed, _ = apply_clock_skew(computation, spec)
    maxima = computation.final_cut()
    for process in range(num_processes):
        previous = None
        for event in skewed.events_of(process):
            assert event.vc[process] == event.sn  # local component invariant
            assert all(event.vc[k] <= maxima[k] for k in range(num_processes))
            if previous is not None:
                assert previous <= event.vc  # per-process monotonicity
            previous = event.vc


@given(computation_scripts, st.integers(0, 1 << 16))
@settings(max_examples=20, deadline=None)
def test_skew_is_deterministic_in_its_seed(case, seed):
    num_processes, script = case
    computation = _build_computation(num_processes, script)
    spec = ClockSkewSpec(mode=SKEW_SOUND, rate=0.5, magnitude=2, seed=seed)
    first, first_stats = apply_clock_skew(computation, spec)
    second, second_stats = apply_clock_skew(computation, spec)
    assert first_stats == second_stats
    for process in range(num_processes):
        assert [e.vc for e in first.events_of(process)] == [
            e.vc for e in second.events_of(process)
        ]


def test_clock_skew_rejects_bad_parameters():
    import pytest

    with pytest.raises(ValueError):
        ClockSkew(2, (3, 3), mode="sideways")
    with pytest.raises(ValueError):
        ClockSkew(2, (3, 3), rate=1.5)
    with pytest.raises(ValueError):
        ClockSkew(2, (3, 3), magnitude=0)
    with pytest.raises(ValueError):
        ClockSkew(3, (3, 3))
