"""Tests for vector clocks and events."""

import pytest

from repro.distributed import Event, EventKind, VectorClock


class TestVectorClock:
    def test_zero(self):
        vc = VectorClock.zero(3)
        assert list(vc) == [0, 0, 0]
        assert len(vc) == 3

    def test_zero_requires_positive_size(self):
        with pytest.raises(ValueError):
            VectorClock.zero(0)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])

    def test_increment_returns_new_clock(self):
        vc = VectorClock.zero(2)
        vc2 = vc.increment(1)
        assert list(vc) == [0, 0]
        assert list(vc2) == [0, 1]

    def test_immutable(self):
        vc = VectorClock.zero(2)
        with pytest.raises(AttributeError):
            vc._components = (5, 5)

    def test_merge_is_componentwise_max(self):
        a = VectorClock([3, 0, 1])
        b = VectorClock([1, 2, 1])
        assert a.merge(b) == VectorClock([3, 2, 1])

    def test_merge_incompatible_sizes(self):
        with pytest.raises(ValueError):
            VectorClock([1]).merge(VectorClock([1, 2]))

    def test_receive_merges_and_ticks(self):
        local = VectorClock([2, 0])
        sender = VectorClock([1, 3])
        assert local.receive(sender, 0) == VectorClock([3, 3])

    def test_ordering(self):
        a = VectorClock([1, 0])
        b = VectorClock([1, 1])
        assert a < b and a <= b and b > a and b >= a
        assert not (b < a)

    def test_equal_clocks_not_strictly_ordered(self):
        a = VectorClock([1, 1])
        assert not (a < a)
        assert a <= a

    def test_concurrent(self):
        a = VectorClock([1, 0])
        b = VectorClock([0, 1])
        assert a.concurrent_with(b) and b.concurrent_with(a)
        assert not a.concurrent_with(a)

    def test_hashable(self):
        assert len({VectorClock([1, 2]), VectorClock([1, 2]), VectorClock([2, 1])}) == 2

    def test_with_component(self):
        assert VectorClock([1, 2]).with_component(0, 7) == VectorClock([7, 2])

    def test_lagging_components(self):
        a = VectorClock([1, 5, 0])
        b = VectorClock([2, 3, 0])
        assert a.lagging_components(b) == [0]
        assert b.lagging_components(a) == [1]

    def test_dominates_on(self):
        a = VectorClock([2, 0, 3])
        b = VectorClock([1, 4, 3])
        assert a.dominates_on(b, [0, 2])
        assert not a.dominates_on(b, [1])


class TestEvent:
    def make(self, **kwargs):
        defaults = dict(
            process=0,
            sn=1,
            kind=EventKind.INTERNAL,
            vc=VectorClock([1, 0]),
            state={"x": 1},
        )
        defaults.update(kwargs)
        return Event(**defaults)

    def test_internal_event(self):
        e = self.make()
        assert e.is_internal and not e.is_send and not e.is_receive

    def test_send_requires_peer(self):
        with pytest.raises(ValueError):
            self.make(kind=EventKind.SEND)

    def test_receive_requires_peer(self):
        with pytest.raises(ValueError):
            self.make(kind=EventKind.RECEIVE)

    def test_vc_local_component_must_match_sn(self):
        with pytest.raises(ValueError):
            self.make(sn=2)

    def test_negative_sn_rejected(self):
        with pytest.raises(ValueError):
            self.make(sn=-1, vc=VectorClock([0, 0]))

    def test_happened_before_via_clocks(self):
        first = self.make()
        second = self.make(sn=2, vc=VectorClock([2, 0]), process=0)
        assert first.happened_before(second)
        assert not second.happened_before(first)

    def test_concurrent_events(self):
        a = self.make()
        b = Event(
            process=1, sn=1, kind=EventKind.INTERNAL, vc=VectorClock([0, 1]), state={}
        )
        assert a.concurrent_with(b)

    def test_local_copy_is_mutable_copy(self):
        e = self.make()
        copy = e.local_copy()
        copy["x"] = 99
        assert e.state["x"] == 1

    def test_str(self):
        assert str(self.make()) == "e0_1(internal)"
