"""Tests for computations, the builder, the lattice and the example programs."""

import itertools

import pytest

from repro.distributed import (
    Computation,
    ComputationBuilder,
    ComputationLattice,
    EventKind,
    VectorClock,
    running_example,
    running_example_registry,
    token_ring_example,
    two_phase_commit_example,
)


@pytest.fixture(scope="module")
def example():
    return running_example()


@pytest.fixture(scope="module")
def lattice(example):
    return ComputationLattice.from_computation(example)


class TestComputationBuilder:
    def test_running_example_shape(self, example):
        assert example.num_processes == 2
        assert [len(example.events_of(i)) for i in range(2)] == [4, 4]
        assert example.num_events == 8

    def test_event_kinds(self, example):
        kinds_p1 = [e.kind for e in example.events_of(0)]
        assert kinds_p1 == [
            EventKind.SEND,
            EventKind.INTERNAL,
            EventKind.INTERNAL,
            EventKind.RECEIVE,
        ]

    def test_vector_clocks_of_running_example(self, example):
        # P2's first event receives P1's first message
        assert example.event(1, 1).vc == VectorClock([1, 1])
        # P1's final receive merges P2's full history
        assert example.event(0, 4).vc == VectorClock([4, 4])
        # concurrent events of Fig 2.2a: e1_3 || e2_2
        assert example.event(0, 3).concurrent_with(example.event(1, 2))
        # and the ordered pair e1_1 -> e2_3
        assert example.event(0, 1).happened_before(example.event(1, 3))

    def test_states_recorded(self, example):
        assert example.event(0, 2).state == {"x1": 5}
        assert example.event(0, 3).state == {"x1": 10}
        assert example.event(1, 3).state == {"x2": 20}
        # send/receive events do not change the local state
        assert example.event(0, 1).state == {"x1": 0}
        assert example.event(1, 4).state == {"x2": 20}

    def test_receive_unsent_message_rejected(self):
        builder = ComputationBuilder([{}, {}])
        with pytest.raises(ValueError):
            builder.receive(0, frm=1, message_id=9)

    def test_receive_wrong_sender_rejected(self):
        builder = ComputationBuilder([{}, {}, {}])
        builder.send(0, to=1, message_id=1)
        with pytest.raises(ValueError):
            builder.receive(1, frm=2, message_id=1)

    def test_duplicate_message_id_rejected(self):
        builder = ComputationBuilder([{}, {}])
        builder.send(0, to=1, message_id=1)
        with pytest.raises(ValueError):
            builder.send(1, to=0, message_id=1)

    def test_self_send_rejected(self):
        builder = ComputationBuilder([{}, {}])
        with pytest.raises(ValueError):
            builder.send(0, to=0, message_id=1)

    def test_in_flight_messages_flagged(self):
        builder = ComputationBuilder([{}, {}])
        builder.send(0, to=1, message_id=1)
        with pytest.raises(ValueError):
            builder.build(allow_in_flight=False)
        assert builder.build(allow_in_flight=True).num_events == 1

    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            ComputationBuilder([])

    def test_timestamps_monotone_per_process(self, example):
        for process in range(example.num_processes):
            times = [e.timestamp for e in example.events_of(process)]
            assert times == sorted(times)


class TestComputation:
    def test_local_state_zero_is_initial(self, example):
        assert example.local_state(0, 0) == {"x1": 0}
        assert example.local_state(1, 0) == {"x2": 0}

    def test_global_state(self, example):
        state = example.global_state((2, 2))
        assert state == [{"x1": 5}, {"x2": 15}]

    def test_consistent_cut_examples_from_paper(self, example):
        # frontier <e1_1, e2_0> is consistent, <e1_3, e2_2> is consistent,
        # but <e1_4 (recv), e2_2> is not (the receive depends on e2_4)
        assert example.is_consistent_cut((1, 0))
        assert example.is_consistent_cut((3, 2))
        assert not example.is_consistent_cut((4, 2))
        # P2's first event depends on P1's send
        assert not example.is_consistent_cut((0, 1))

    def test_cut_validation(self, example):
        with pytest.raises(ValueError):
            example.is_consistent_cut((1, 2, 3))
        with pytest.raises(ValueError):
            example.is_consistent_cut((9, 0))

    def test_mismatched_initial_states_rejected(self):
        with pytest.raises(ValueError):
            Computation(initial_states=[{}], events=[[], []])

    def test_frontier_events(self, example):
        frontier = example.frontier_events((1, 0))
        assert frontier[0].sn == 1 and frontier[1] is None

    def test_final_cut(self, example):
        assert example.final_cut() == (4, 4)


class TestLattice:
    def test_number_of_consistent_cuts_matches_bruteforce(self, example, lattice):
        expected = 0
        for cut in itertools.product(range(5), range(5)):
            if example.is_consistent_cut(cut):
                expected += 1
        assert len(lattice) == expected

    def test_fig_2_2b_structure(self, lattice):
        """The lattice of Fig 2.2b has 17 consistent cuts (nodes)."""
        assert len(lattice) == 17
        assert lattice.bottom == (0, 0)
        assert lattice.top == (4, 4)

    def test_every_cut_is_consistent(self, example, lattice):
        for cut in lattice.cuts():
            assert example.is_consistent_cut(cut)

    def test_successor_edges_add_exactly_one_event(self, lattice):
        for cut in lattice.cuts():
            for successor in lattice.successors(cut):
                assert sum(successor) == sum(cut) + 1
                assert all(s >= c for s, c in zip(successor, cut))

    def test_predecessors_inverse_of_successors(self, lattice):
        for cut in lattice.cuts():
            for successor in lattice.successors(cut):
                assert cut in lattice.predecessors(successor)

    def test_join_meet(self, lattice):
        assert lattice.join((1, 0), (0, 1)) == (1, 1)
        assert lattice.meet((3, 2), (2, 3)) == (2, 2)

    def test_join_meet_of_consistent_cuts_are_consistent(self, example, lattice):
        cuts = lattice.cuts()
        for a in cuts:
            for b in cuts:
                assert example.is_consistent_cut(lattice.join(a, b))
                assert example.is_consistent_cut(lattice.meet(a, b))

    def test_join_irreducible_iff_single_predecessor(self, lattice):
        for cut in lattice.cuts():
            expected = len(lattice.predecessors(cut)) == 1
            assert lattice.is_join_irreducible(cut) == expected

    def test_paths_start_and_end_correctly(self, lattice):
        for path in lattice.paths():
            assert path[0] == lattice.bottom
            assert path[-1] == lattice.top
            for a, b in zip(path, path[1:]):
                assert b in lattice.successors(a)

    def test_count_paths_matches_enumeration(self, lattice):
        assert lattice.count_paths() == sum(1 for _ in lattice.paths())

    def test_partial_paths(self, lattice):
        partial = list(lattice.paths(start=(1, 1), end=(3, 3)))
        assert partial
        for path in partial:
            assert path[0] == (1, 1) and path[-1] == (3, 3)

    def test_paths_invalid_endpoints(self, lattice):
        with pytest.raises(ValueError):
            list(lattice.paths(start=(0, 1)))

    def test_levels_and_width(self, lattice):
        levels = lattice.levels()
        assert sum(len(level) for level in levels) == len(lattice)
        assert lattice.width() >= 2  # concurrency exists in the running example

    def test_global_states_on_path(self, example, lattice):
        path = next(lattice.paths())
        states = lattice.global_states_on_path(path)
        assert len(states) == len(path)
        assert states[0] == [{"x1": 0}, {"x2": 0}]

    def test_membership(self, lattice):
        assert (1, 1) in lattice
        assert (0, 1) not in lattice


class TestExamplePrograms:
    def test_two_phase_commit_builds(self):
        computation = two_phase_commit_example(3)
        assert computation.num_processes == 4
        # final state: everyone committed
        final = computation.global_state(computation.final_cut())
        assert all(state["committed"] for state in final)

    def test_two_phase_commit_requires_participant(self):
        with pytest.raises(ValueError):
            two_phase_commit_example(0)

    def test_token_ring_builds(self):
        computation = token_ring_example(3, rounds=2)
        assert computation.num_processes == 3
        lattice = ComputationLattice.from_computation(computation)
        assert len(lattice) > 10

    def test_token_ring_requires_two_processes(self):
        with pytest.raises(ValueError):
            token_ring_example(1)

    def test_registry_matches_running_example(self):
        registry = running_example_registry()
        example = running_example()
        final = example.global_state(example.final_cut())
        letter = registry.letter_of(final)
        assert letter == frozenset({"x1>=5", "x1=10", "x2>=15"})
