"""The property-fuzzing engine: determinism, classification, shrinking.

The fuzzer's own acceptance criteria: the point stream is a pure function
of the master seed, every outcome is reproducible from its serialized
``RunSpec`` alone (the round-trip property the shrunk repro documents rely
on), classification covers sound/divergent/crash, and shrinking is a
deterministic greedy walk that preserves the failure class.
"""

import json
from pathlib import Path

import pytest

from repro.cluster.spec import RunSpec
from repro.core.centralized import CentralizedMonitor
from repro.faults import (
    ByzantineSpec,
    ClockSkewSpec,
    FaultPlan,
    parse_fault_plan,
)
from repro.fuzz import (
    CLASS_CRASH,
    CLASS_DIVERGENT,
    CLASS_SOUND,
    CLASS_STORM,
    can_storm,
    execute_point,
    generate_points,
    is_attack_plan,
    run_fuzz,
    shrink_candidates,
    shrink_point,
)


def _cheap_spec(**overrides):
    """A fast-to-execute point (two processes, tiny trace)."""
    base = dict(
        scenario="paper-default",
        property_name="B",
        num_processes=2,
        events_per_process=3,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        seed=7,
        max_views_per_state=2,
        fault_plan=None,
        compiled_kernel=True,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestPointGeneration:
    def test_stream_is_deterministic_in_the_seed(self):
        first = generate_points(99, 20)
        second = generate_points(99, 20)
        assert [s.to_json() for s in first] == [s.to_json() for s in second]

    def test_different_seeds_differ(self):
        assert [s.to_json() for s in generate_points(1, 10)] != [
            s.to_json() for s in generate_points(2, 10)
        ]

    def test_points_are_valid_replayable_specs(self):
        for spec in generate_points(5, 30):
            assert RunSpec.from_json(spec.to_json()) == spec
            spec.faults()  # the fault plan grammar parses back
            assert 2 <= spec.num_processes <= 3
            assert spec.events_per_process >= 3

    def test_generation_covers_the_adversarial_space(self):
        points = generate_points(0, 120)
        plans = [p.faults() for p in points]
        assert any(p is None for p in plans)
        assert any(p is not None and p.crashes for p in plans)
        assert any(p is not None and p.byzantine for p in plans)
        assert any(p is not None and p.clock_skew is not None for p in plans)
        assert any(is_attack_plan(p) for p in plans)
        assert any(not p.compiled_kernel for p in points)


class TestAttackPlans:
    def test_no_plan_is_not_an_attack(self):
        assert not is_attack_plan(None)
        assert not is_attack_plan(FaultPlan())

    def test_corruption_is_an_attack(self):
        plan = FaultPlan(byzantine=(ByzantineSpec(process=0, corrupt_every=2),))
        assert is_attack_plan(plan)

    def test_unsound_skew_is_an_attack_sound_skew_is_not(self):
        assert is_attack_plan(FaultPlan(clock_skew=ClockSkewSpec(mode="unsound")))
        assert not is_attack_plan(FaultPlan(clock_skew=ClockSkewSpec(mode="sound")))

    def test_benign_behaviours_are_not_attacks(self):
        plan = parse_fault_plan("0@2+1:rejoin,1!dup2!replay3!drop4")
        assert not is_attack_plan(plan)


class TestExecution:
    def test_sound_point_classifies_sound_with_overhead(self):
        outcome = execute_point(_cheap_spec(), index=3)
        assert outcome.classification == CLASS_SOUND
        assert outcome.index == 3
        assert not outcome.is_finding
        assert outcome.overhead["messages_per_event"] > 0

    def test_crashing_point_classifies_crash(self):
        outcome = execute_point(_cheap_spec(scenario="no-such-scenario"))
        assert outcome.classification == CLASS_CRASH
        assert "no-such-scenario" in outcome.error
        assert outcome.is_finding  # a crash is always a finding

    def test_outcome_round_trips_through_spec_json(self):
        for spec in (
            _cheap_spec(),
            _cheap_spec(fault_plan="0@2+1:rejoin", seed=13),
            _cheap_spec(fault_plan="1!dup2!corrupt3", seed=21),
            _cheap_spec(fault_plan="skew@unsound~0.5~2~9", property_name="E"),
        ):
            direct = execute_point(spec)
            replayed = execute_point(RunSpec.from_json(spec.to_json()))
            assert direct.classification == replayed.classification
            assert direct.soundness_violations == replayed.soundness_violations
            assert direct.backend_divergence == replayed.backend_divergence
            assert direct.overhead == replayed.overhead

    def test_divergence_against_a_denying_oracle(self, monkeypatch):
        # force the oracle to deny everything: any declared verdict must be
        # reported as a soundness violation and classify the point divergent
        monkeypatch.setattr(
            CentralizedMonitor,
            "monitor_computation_declared",
            classmethod(lambda cls, *args, **kwargs: frozenset()),
        )
        # property B on this trace declares ⊤, which the stub oracle denies
        outcome = execute_point(_cheap_spec(property_name="B", seed=3))
        assert outcome.classification == CLASS_DIVERGENT
        assert outcome.soundness_violations
        assert outcome.is_finding

    def test_attack_divergence_is_not_a_finding(self, monkeypatch):
        monkeypatch.setattr(
            CentralizedMonitor,
            "monitor_computation_declared",
            classmethod(lambda cls, *args, **kwargs: frozenset()),
        )
        outcome = execute_point(
            _cheap_spec(property_name="B", seed=3, fault_plan="0!corrupt2")
        )
        assert outcome.classification == CLASS_DIVERGENT
        assert outcome.attack
        assert not outcome.is_finding


class TestStormClassification:
    """The event-budget guard against message-amplification storms.

    Rejoin recovery combined with message duplication can amplify token
    traffic without bound (found by fuzzing: seed 101, point 92 ran past
    10^5 simulator events and gigabytes of state).  The engine bounds every
    point by a simulator-event budget and classifies exhaustion as
    ``storm`` — expected under amplifying plans, a finding anywhere else.
    The tests shrink the budget so they run in milliseconds.
    """

    def test_simulator_budget_raises_the_typed_exception(self):
        from repro.cluster.spec import build_cell_inputs
        from repro.scenarios import get_scenario
        from repro.sim import SimulationBudgetExceeded, simulate_monitored_run

        spec = _cheap_spec()
        computation, automaton, registry = build_cell_inputs(spec)
        with pytest.raises(SimulationBudgetExceeded, match="event budget"):
            simulate_monitored_run(
                computation,
                automaton,
                registry,
                seed=spec.seed,
                network=get_scenario(spec.scenario).network,
                max_sim_events=5,
            )

    def test_can_storm_names_the_amplifying_behaviours(self):
        assert not can_storm(None)
        assert not can_storm(parse_fault_plan("0@2+1:rejoin"))
        assert not can_storm(parse_fault_plan("0!corrupt2!drop3"))
        assert can_storm(parse_fault_plan("0!dup2"))
        assert can_storm(parse_fault_plan("1!replay3"))

    def test_budget_exhaustion_without_amplification_is_a_finding(
        self, monkeypatch
    ):
        import repro.fuzz.engine as engine

        monkeypatch.setattr(engine, "_SIM_EVENT_BUDGET", 5)
        outcome = execute_point(_cheap_spec())
        assert outcome.classification == CLASS_STORM
        assert "event budget" in outcome.error
        assert outcome.is_finding  # no amplifying behaviour armed

    def test_expected_storms_are_recorded_but_not_findings_nor_shrunk(
        self, monkeypatch
    ):
        import repro.fuzz.engine as engine

        monkeypatch.setattr(engine, "_SIM_EVENT_BUDGET", 5)
        outcome = execute_point(_cheap_spec(fault_plan="0!dup2"), index=9)
        assert outcome.classification == CLASS_STORM
        assert not outcome.is_finding
        report = engine.FuzzReport(seed=0, outcomes=[outcome])
        assert report.counts[CLASS_STORM] == 1
        assert report.bench_timings(1.0)["fuzz_sweep"]["storms"] == 1


class TestDiscoveredUnsoundSkewDivergence:
    """A real attack point found by fuzzing — no stubbed oracle needed.

    With unsound clock skew at full rate, the decentralized run declares ⊥
    on a trace where the centralized oracle never does: manufactured
    causality makes cuts that never happened look consistent.  The harness
    must catch this, flag it as an attack (the plan armed unsound skew, so
    it is *expected*, not a finding) and reproduce it from JSON alone.
    """

    SPEC = dict(
        scenario="paper-default",
        property_name="D",
        num_processes=3,
        events_per_process=5,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        seed=29,
        max_views_per_state=3,
        fault_plan="skew@unsound~1.0~3~1",
        compiled_kernel=True,
    )

    def test_unsound_skew_induces_a_caught_divergence(self):
        outcome = execute_point(RunSpec(**self.SPEC))
        assert outcome.classification == CLASS_DIVERGENT
        assert outcome.soundness_violations  # the forged ⊥
        assert outcome.attack
        assert not outcome.is_finding

    def test_the_divergence_replays_from_json(self):
        spec = RunSpec(**self.SPEC)
        replayed = execute_point(RunSpec.from_json(spec.to_json()))
        assert replayed.classification == CLASS_DIVERGENT
        assert replayed.soundness_violations == execute_point(spec).soundness_violations


class TestShrinking:
    def test_candidates_reduce_or_simplify(self):
        spec = _cheap_spec(
            num_processes=3,
            events_per_process=5,
            fault_plan="0@2+1:rejoin,1!dup2!corrupt3,skew@sound~0.5~2~4",
        )
        candidates = list(shrink_candidates(spec))
        assert candidates
        assert any(c.events_per_process < spec.events_per_process for c in candidates)
        assert any(c.num_processes < spec.num_processes for c in candidates)
        assert any(c.fault_plan is None or "corrupt" not in (c.fault_plan or "")
                   for c in candidates)
        # candidate generation is pure: same spec, same list
        assert [c.to_json() for c in shrink_candidates(spec)] == [
            c.to_json() for c in candidates
        ]

    def test_shrink_preserves_the_failure_class(self):
        # an unknown scenario crashes whatever the other parameters are, so
        # the shrinker must walk all the way down to the minimal spec
        spec = _cheap_spec(
            scenario="no-such-scenario",
            num_processes=3,
            events_per_process=6,
            fault_plan="0@2+1:rejoin,1!dup2,skew@sound~0.5~2~4",
        )
        shrunk = shrink_point(spec, CLASS_CRASH)
        assert shrunk.num_processes == 2
        assert shrunk.events_per_process == 2
        assert shrunk.fault_plan is None
        assert execute_point(shrunk).classification == CLASS_CRASH

    def test_shrunk_spec_replays_from_its_document(self, tmp_path):
        spec = _cheap_spec(scenario="no-such-scenario")
        shrunk = shrink_point(spec, CLASS_CRASH)
        path = shrunk.save(tmp_path / "repro.json")
        assert execute_point(RunSpec.load(path)).classification == CLASS_CRASH


class TestFuzzCli:
    REPO_ROOT = Path(__file__).resolve().parents[2]

    def _fuzz(self, out_dir, *extra):
        import subprocess
        import sys

        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "fuzz",
                "--seed",
                "7",
                "--points",
                "3",
                "--out",
                str(out_dir),
                *extra,
            ],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=self.REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_module_invocation_is_deterministic(self, tmp_path):
        first = self._fuzz(tmp_path / "a")
        second = self._fuzz(tmp_path / "b")
        assert first.returncode == 0, first.stderr
        assert second.returncode == 0, second.stderr
        assert "fuzzed 3 points" in first.stdout
        report_a = (tmp_path / "a" / "fuzz-report.json").read_text()
        report_b = (tmp_path / "b" / "fuzz-report.json").read_text()
        assert report_a == report_b
        report = json.loads(report_a)
        assert report["seed"] == 7
        assert report["points"] == 3
        # the bench sidecar carries the sweep + worst-overhead entries
        bench = json.loads((tmp_path / "a" / "fuzz-bench.json").read_text())
        assert bench["schema"] == "repro-bench/1"
        assert "fuzz_sweep" in bench["timings"]
        assert "fuzz_worst_overhead" in bench["timings"]


class TestCiWiring:
    def test_ci_runs_the_fuzz_smoke_and_nightly_jobs(self):
        repo_root = Path(__file__).resolve().parents[2]
        text = (repo_root / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )
        assert "fuzz-smoke" in text
        assert "--seed 7 --points 200" in text
        assert "fuzz-nightly" in text
        # shrunk repros must survive the failing run that produced them
        assert text.count("if: always()") >= 2


class TestRunFuzz:
    def test_run_is_deterministic(self):
        first = run_fuzz(17, 6, shrink=False)
        second = run_fuzz(17, 6, shrink=False)
        assert [o.as_dict() for o in first.outcomes] == [
            o.as_dict() for o in second.outcomes
        ]
        assert first.counts == second.counts

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_fuzz(17, 4, shrink=False, progress=lambda o: seen.append(o.index))
        assert seen == [0, 1, 2, 3]

    def test_report_document_is_json_serialisable(self):
        report = run_fuzz(17, 4, shrink=False)
        document = json.loads(json.dumps(report.as_dict()))
        assert document["points"] == 4
        assert set(document["counts"]) == {
            CLASS_SOUND,
            CLASS_DIVERGENT,
            CLASS_CRASH,
            CLASS_STORM,
        }
        assert len(document["outcomes"]) == 4
        for row in document["outcomes"]:
            RunSpec.from_json(row["spec"])  # every row replays

    def test_bench_timings_assemble_into_a_bench_document(self):
        from repro.experiments.benchjson import SCHEMA_VERSION, make_document

        report = run_fuzz(17, 4, shrink=False)
        timings = report.bench_timings(total_seconds=1.5)
        assert timings["fuzz_sweep"]["points"] == 4
        assert timings["fuzz_sweep"]["group"] == "fuzz"
        document = make_document(timings)
        assert document["schema"] == SCHEMA_VERSION
        assert "fuzz_worst_overhead" in document["timings"]

    def test_failures_are_shrunk_into_replayable_repros(self, monkeypatch):
        # deny-everything oracle: every point with a declared verdict
        # diverges, so the report must carry shrunk repros for them
        monkeypatch.setattr(
            CentralizedMonitor,
            "monitor_computation_declared",
            classmethod(lambda cls, *args, **kwargs: frozenset()),
        )
        report = run_fuzz(17, 3, shrink=True)
        divergent = [
            o for o in report.outcomes if o.classification == CLASS_DIVERGENT
        ]
        assert divergent, "expected at least one divergent point under the stub"
        for outcome in divergent:
            shrunk = report.shrunk[outcome.index]
            assert execute_point(shrunk).classification == CLASS_DIVERGENT
