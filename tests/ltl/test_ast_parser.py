"""Tests for the LTL formula AST and the parser."""

import pytest

from repro.ltl import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    Iff,
    Implies,
    LTLSyntaxError,
    Next,
    Not,
    Or,
    Release,
    Until,
    atoms_of,
    parse,
    subformulas,
)


class TestFormulaEquality:
    def test_atoms_with_same_name_are_equal(self):
        assert Atom("p") == Atom("p")
        assert hash(Atom("p")) == hash(Atom("p"))

    def test_atoms_with_different_names_differ(self):
        assert Atom("p") != Atom("q")

    def test_structural_equality(self):
        assert And(Atom("p"), Atom("q")) == And(Atom("p"), Atom("q"))
        assert Until(Atom("p"), Atom("q")) != Until(Atom("q"), Atom("p"))

    def test_different_operators_not_equal(self):
        assert And(Atom("p"), Atom("q")) != Or(Atom("p"), Atom("q"))
        assert Until(Atom("p"), Atom("q")) != Release(Atom("p"), Atom("q"))

    def test_constants_are_singletons_by_value(self):
        assert TRUE == TRUE
        assert FALSE == FALSE
        assert TRUE != FALSE

    def test_formula_usable_as_dict_key(self):
        table = {And(Atom("p"), Atom("q")): 1, Atom("p"): 2}
        assert table[And(Atom("p"), Atom("q"))] == 1
        assert table[Atom("p")] == 2

    def test_atom_requires_nonempty_name(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_formulas_are_immutable(self):
        with pytest.raises(AttributeError):
            Atom("p").name = "q"
        with pytest.raises(AttributeError):
            And(Atom("p"), Atom("q")).left = Atom("r")


class TestOperatorOverloads:
    def test_and_or_invert(self):
        p, q = Atom("p"), Atom("q")
        assert (p & q) == And(p, q)
        assert (p | q) == Or(p, q)
        assert (~p) == Not(p)

    def test_rshift_builds_implication(self):
        p, q = Atom("p"), Atom("q")
        assert (p >> q) == Implies(p, q)


class TestTraversal:
    def test_atoms_of_collects_and_sorts(self):
        f = parse("G(b -> (a U c))")
        assert atoms_of(f) == ("a", "b", "c")

    def test_atoms_of_deduplicates(self):
        assert atoms_of(parse("p & p & q")) == ("p", "q")

    def test_subformulas_unique(self):
        f = And(Atom("p"), Atom("p"))
        subs = subformulas(f)
        assert len(subs) == 2  # the conjunction and one copy of p

    def test_is_temporal(self):
        assert parse("G p").is_temporal
        assert parse("p U q").is_temporal
        assert not parse("p & !q").is_temporal


class TestParser:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("p", Atom("p")),
            ("true", TRUE),
            ("false", FALSE),
            ("!p", Not(Atom("p"))),
            ("~p", Not(Atom("p"))),
            ("p & q", And(Atom("p"), Atom("q"))),
            ("p && q", And(Atom("p"), Atom("q"))),
            ("p | q", Or(Atom("p"), Atom("q"))),
            ("p || q", Or(Atom("p"), Atom("q"))),
            ("p -> q", Implies(Atom("p"), Atom("q"))),
            ("p => q", Implies(Atom("p"), Atom("q"))),
            ("p <-> q", Iff(Atom("p"), Atom("q"))),
            ("X p", Next(Atom("p"))),
            ("F p", Eventually(Atom("p"))),
            ("<> p", Eventually(Atom("p"))),
            ("G p", Always(Atom("p"))),
            ("[] p", Always(Atom("p"))),
            ("p U q", Until(Atom("p"), Atom("q"))),
            ("p R q", Release(Atom("p"), Atom("q"))),
            ("p V q", Release(Atom("p"), Atom("q"))),
        ],
    )
    def test_single_operators(self, text, expected):
        assert parse(text) == expected

    def test_dotted_atom_names(self):
        assert parse("P0.p & P1.q") == And(Atom("P0.p"), Atom("P1.q"))

    def test_braced_atoms(self):
        f = parse("G({x1 >= 5} -> ({x2 >= 15} U {x1 = 10}))")
        assert "x1 >= 5" in atoms_of(f)
        assert "x1 = 10" in atoms_of(f)

    def test_precedence_and_binds_tighter_than_or(self):
        assert parse("a | b & c") == Or(Atom("a"), And(Atom("b"), Atom("c")))

    def test_precedence_until_binds_tighter_than_and(self):
        assert parse("a & b U c") == And(Atom("a"), Until(Atom("b"), Atom("c")))

    def test_precedence_implication_weakest(self):
        assert parse("a & b -> c | d") == Implies(
            And(Atom("a"), Atom("b")), Or(Atom("c"), Atom("d"))
        )

    def test_implication_right_associative(self):
        assert parse("a -> b -> c") == Implies(Atom("a"), Implies(Atom("b"), Atom("c")))

    def test_until_right_associative(self):
        assert parse("a U b U c") == Until(Atom("a"), Until(Atom("b"), Atom("c")))

    def test_unary_operators_stack(self):
        assert parse("G F p") == Always(Eventually(Atom("p")))
        assert parse("! X p") == Not(Next(Atom("p")))

    def test_parentheses_override_precedence(self):
        assert parse("(a | b) & c") == And(Or(Atom("a"), Atom("b")), Atom("c"))

    def test_running_example_roundtrip(self):
        text = "G({x1>=5} -> ({x2>=15} U {x1=10}))"
        f = parse(text)
        # parsing the string rendering again yields the same structure for
        # formulas without braces
        assert parse("G(a -> (b U c))") == parse(str(parse("G(a -> (b U c))")))
        assert f.is_temporal

    @pytest.mark.parametrize(
        "bad",
        ["", "p &", "& p", "(p", "p)", "p q", "U p", "p U", "G", "p # q"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(LTLSyntaxError):
            parse(bad)

    def test_parse_rejects_non_strings(self):
        with pytest.raises(TypeError):
            parse(42)  # type: ignore[arg-type]
