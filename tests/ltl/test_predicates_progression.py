"""Tests for proposition registries and the progression construction."""

import pytest

from repro.ltl import (
    Proposition,
    PropositionRegistry,
    Verdict,
    build_monitor,
    parse,
)
from repro.ltl.ast import And, Atom, Or, Until
from repro.ltl.progression import build_progression_machine, canonicalize, progress


class TestProposition:
    def test_variable_proposition(self):
        p = Proposition.variable("P0.p", 0, "p")
        assert p.holds_in({"p": True})
        assert not p.holds_in({"p": False})
        assert not p.holds_in({})

    @pytest.mark.parametrize(
        "op, constant, value, expected",
        [
            (">=", 5, 7, True),
            (">=", 5, 4, False),
            ("==", 10, 10, True),
            ("==", 10, 9, False),
            ("!=", 10, 9, True),
            ("<", 15, 20, False),
            ("<=", 15, 15, True),
            (">", 0, 1, True),
        ],
    )
    def test_comparison_proposition(self, op, constant, value, expected):
        p = Proposition.comparison("x", 0, "x", op, constant)
        assert p.holds_in({"x": value}) is expected

    def test_invalid_operator(self):
        with pytest.raises(ValueError):
            Proposition.comparison("x", 0, "x", "<>", 3)


class TestPropositionRegistry:
    @pytest.fixture
    def registry(self):
        return PropositionRegistry(
            [
                Proposition.comparison("x1>=5", 0, "x1", ">=", 5),
                Proposition.comparison("x1=10", 0, "x1", "==", 10),
                Proposition.comparison("x2>=15", 1, "x2", ">=", 15),
            ]
        )

    def test_names_sorted(self, registry):
        assert registry.names == ["x1=10", "x1>=5", "x2>=15"]

    def test_owner_lookup(self, registry):
        assert registry.owner_of("x2>=15") == 1
        assert registry.owner_of("x1>=5") == 0

    def test_owned_by(self, registry):
        assert {p.name for p in registry.owned_by(0)} == {"x1>=5", "x1=10"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PropositionRegistry(
                [Proposition.variable("p", 0, "p"), Proposition.variable("p", 1, "p")]
            )

    def test_local_letter(self, registry):
        assert registry.local_letter(0, {"x1": 10}) == frozenset({"x1>=5", "x1=10"})
        assert registry.local_letter(1, {"x2": 0}) == frozenset()

    def test_letter_of_global_state(self, registry):
        letter = registry.letter_of([{"x1": 5}, {"x2": 20}])
        assert letter == frozenset({"x1>=5", "x2>=15"})

    def test_conjuncts_by_process(self, registry):
        guard = {"x1>=5": True, "x2>=15": False, "x1=10": False}
        per_process = registry.conjuncts_by_process(guard, 2)
        assert per_process[0] == {"x1>=5": True, "x1=10": False}
        assert per_process[1] == {"x2>=15": False}

    def test_participating_processes(self, registry):
        assert registry.participating_processes({"x2>=15": True}) == frozenset({1})
        assert registry.participating_processes({}) == frozenset()

    def test_local_conjunct_holds(self, registry):
        assert registry.local_conjunct_holds(0, {"x1>=5": True, "x1=10": False}, {"x1": 7})
        assert not registry.local_conjunct_holds(0, {"x1>=5": True}, {"x1": 2})

    def test_local_conjunct_wrong_owner(self, registry):
        with pytest.raises(ValueError):
            registry.local_conjunct_holds(0, {"x2>=15": True}, {"x2": 20})

    def test_contains_and_len(self, registry):
        assert "x1>=5" in registry
        assert "missing" not in registry
        assert len(registry) == 3

    def test_boolean_grid(self):
        registry = PropositionRegistry.boolean_grid(3)
        assert len(registry) == 6
        assert registry.owner_of("P2.q") == 2
        assert registry.local_letter(1, {"p": True, "q": False}) == frozenset({"P1.p"})


class TestProgression:
    def test_progress_atom(self):
        assert progress(Atom("p"), frozenset({"p"})) == parse("true")
        assert progress(Atom("p"), frozenset()) == parse("false")

    def test_progress_until_pending(self):
        f = Until(Atom("p"), Atom("q"))
        assert progress(f, frozenset({"p"})) == f
        assert progress(f, frozenset({"q"})) == parse("true")
        assert progress(f, frozenset()) == parse("false")

    def test_progress_always(self):
        from repro.ltl import to_nnf

        f = to_nnf(parse("G p"))
        assert progress(f, frozenset()) == parse("false")
        assert progress(f, frozenset({"p"})) == f

    def test_canonicalize_flattens_and_sorts(self):
        f1 = And(And(Atom("c"), Atom("a")), Atom("b"))
        f2 = And(Atom("a"), And(Atom("b"), Atom("c")))
        assert canonicalize(f1) == canonicalize(f2)

    def test_canonicalize_deduplicates(self):
        assert canonicalize(And(Atom("a"), Atom("a"))) == Atom("a")
        assert canonicalize(Or(Atom("a"), Atom("a"))) == Atom("a")

    def test_canonicalize_constants(self):
        assert canonicalize(parse("a & false")) == parse("false")
        assert canonicalize(parse("a | true")) == parse("true")
        assert canonicalize(parse("a & true")) == Atom("a")

    def test_machine_matches_reference_when_given(self):
        formula = parse("G(P0.p U P1.p)")
        reference = build_monitor(formula)
        machine, formulas = build_progression_machine(
            formula, verdict_machine=reference._machine
        )
        assert machine.num_states == 3
        assert len(formulas) == machine.num_states

    def test_machine_verdicts_without_reference(self):
        formula = parse("G(P0.p U P1.p)")
        machine, _ = build_progression_machine(formula)
        verdicts = set(machine.outputs)
        assert verdicts == {Verdict.INCONCLUSIVE, Verdict.BOTTOM}

    def test_max_states_guard(self):
        with pytest.raises(RuntimeError):
            build_progression_machine(parse("G(a -> (b U c))"), max_states=1)

    def test_progression_minimized_equals_automaton_method(self):
        for text in ["G(P0.p U P1.p)", "F(P0.p & P1.p)", "G(a -> (b U c))"]:
            a = build_monitor(text, method="automaton")
            b = build_monitor(text, method="progression", minimize=True)
            assert a.num_states == b.num_states
