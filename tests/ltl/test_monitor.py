"""Tests for LTL3 monitor synthesis (both construction methods)."""

import itertools

import pytest

from repro.ltl import (
    Verdict,
    all_assignments,
    build_monitor,
    ltl3_bruteforce,
    parse,
)


def w(*names):
    return [frozenset(name) for name in names]


class TestRunningExample:
    """The monitor of Fig. 2.3: ψ = G((x1>=5) -> ((x2>=15) U (x1=10)))."""

    @pytest.fixture(scope="class")
    def monitor(self):
        return build_monitor("G(a -> (b U c))")  # a=x1>=5, b=x2>=15, c=x1=10

    def test_three_states(self, monitor):
        assert monitor.num_states == 3

    def test_initial_verdict_inconclusive(self, monitor):
        assert monitor.verdict(monitor.initial_state) is Verdict.INCONCLUSIVE

    def test_has_bottom_state_but_no_top(self, monitor):
        verdicts = {monitor.verdict(s) for s in monitor.states}
        assert Verdict.BOTTOM in verdicts
        assert Verdict.TOP not in verdicts

    def test_violating_trace(self, monitor):
        # x1 >= 5 with x2 < 15 and x1 != 10 => violation
        assert monitor.verdict_of(w("a")) is Verdict.BOTTOM

    def test_pending_until(self, monitor):
        assert monitor.verdict_of(w("ab")) is Verdict.INCONCLUSIVE

    def test_until_discharged(self, monitor):
        assert monitor.verdict_of(w("ab", "c")) is Verdict.INCONCLUSIVE

    def test_bottom_is_trap(self, monitor):
        state = monitor.run(w("a"))
        for letter in all_assignments(monitor.atoms):
            assert monitor.step(state, letter) == state

    def test_final_state_marked(self, monitor):
        assert monitor.is_final(monitor.run(w("a")))
        assert not monitor.is_final(monitor.initial_state)


class TestVerdictsAgainstBruteforce:
    FORMULAS = [
        "G p",
        "F p",
        "p U q",
        "p R q",
        "X p",
        "X X p",
        "G(p -> F q)",
        "G(p -> (q U r))",
        "F(p & q)",
        "(F p) & (F q)",
        "(G p) | (G q)",
        "p U (q U r)",
        "G(p | q)",
        "!(p U q)",
    ]

    @pytest.mark.parametrize("text", FORMULAS)
    @pytest.mark.parametrize("method", ["automaton", "progression"])
    def test_monitor_matches_bruteforce_on_short_traces(self, text, method):
        formula = parse(text)
        monitor = build_monitor(formula, method=method)
        letters = all_assignments(monitor.atoms)
        for length in range(0, 3):
            for trace in itertools.product(letters, repeat=length):
                expected = ltl3_bruteforce(formula, list(trace), atoms=monitor.atoms,
                                           max_prefix=2, max_loop=2)
                got = monitor.verdict_of(list(trace))
                assert got is expected, f"{text} on {trace}: {got} != {expected}"

    @pytest.mark.parametrize("text", FORMULAS)
    def test_verdicts_are_monotone(self, text):
        """Once ⊤ or ⊥ is reached the verdict never changes (Definition 11)."""
        monitor = build_monitor(text)
        letters = all_assignments(monitor.atoms)
        for state in monitor.states:
            if monitor.is_final(state):
                for letter in letters:
                    assert monitor.step(state, letter) == state

    @pytest.mark.parametrize("text", FORMULAS)
    def test_methods_agree(self, text):
        """The progression machine and the Büchi-based machine compute the
        same verdict on every short trace."""
        reference = build_monitor(text, method="automaton")
        progression = build_monitor(text, method="progression", minimize=False)
        letters = all_assignments(reference.atoms)
        for length in range(0, 3):
            for trace in itertools.product(letters, repeat=length):
                assert reference.verdict_of(list(trace)) is progression.verdict_of(
                    list(trace)
                )


class TestTransitionView:
    def test_deterministic_cover(self):
        """For every state and letter at least one conjunctive transition fires
        and all firing transitions agree on the target (determinism)."""
        monitor = build_monitor("G(a -> (b U c))")
        letters = all_assignments(monitor.atoms)
        for state in monitor.states:
            outgoing = monitor.outgoing_transitions(state) + monitor.self_loop_transitions(state)
            for letter in letters:
                firing = [t for t in outgoing if t.guard_satisfied(letter)]
                assert len(firing) >= 1
                assert {t.target for t in firing} == {monitor.step(state, letter)}

    def test_transition_ids_unique(self):
        monitor = build_monitor("G((a & b) U (c & d))")
        ids = [t.transition_id for t in monitor.transitions]
        assert len(ids) == len(set(ids))

    def test_enabled_transition_lookup(self):
        monitor = build_monitor("F p")
        t = monitor.enabled_transition(monitor.initial_state, frozenset({"p"}))
        assert t is not None
        assert monitor.verdict(t.target) is Verdict.TOP

    def test_self_loop_vs_outgoing_partition(self):
        monitor = build_monitor("G((a & b) U (c & d))")
        for t in monitor.transitions:
            if t.is_self_loop:
                assert t in monitor.self_loop_transitions(t.source)
            else:
                assert t in monitor.outgoing_transitions(t.source)

    def test_counts_sum(self):
        monitor = build_monitor("G(a -> (b U c))")
        counts = monitor.transition_counts()
        assert counts["total"] == counts["outgoing"] + counts["self_loops"]

    def test_describe_contains_states_and_guards(self):
        monitor = build_monitor("F p")
        text = monitor.describe()
        assert "verdict" in text
        assert "-->" in text


class TestAlphabetExtension:
    def test_extra_atoms_allowed(self):
        monitor = build_monitor("F p", atoms=["p", "q"])
        assert monitor.atoms == ("p", "q")
        assert monitor.verdict_of([frozenset({"q"})]) is Verdict.INCONCLUSIVE
        assert monitor.verdict_of([frozenset({"p", "q"})]) is Verdict.TOP

    def test_missing_atoms_rejected(self):
        with pytest.raises(ValueError):
            build_monitor("p & q", atoms=["p"])

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            build_monitor("p", method="magic")

    def test_letters_may_contain_foreign_atoms(self):
        monitor = build_monitor("F p")
        assert monitor.verdict_of([frozenset({"p", "unrelated"})]) is Verdict.TOP


class TestPaperTable51:
    """Transition counts of the experimental automata (progression method)."""

    CASES = [
        ("G(P0.p U P1.p)", (7, 4, 3)),                               # A, 2 processes
        ("F(P0.p & P1.p)", (4, 1, 3)),                               # B, 2 processes
        ("G((P0.p & P1.p) U (P0.q & P1.q))", (15, 11, 4)),           # D, 2 processes
        ("F(P0.p & P1.p & P0.q & P1.q)", (6, 1, 5)),                 # E, 2 processes
        ("G(P0.p U (P1.p & P2.p))", (11, 7, 4)),                     # A/C, 3 processes
        ("G((P0.p & P1.p) U (P2.p & P3.p))", (15, 11, 4)),           # A, 4 processes
    ]

    @pytest.mark.parametrize("text, expected", CASES)
    def test_transition_counts_match_table(self, text, expected):
        monitor = build_monitor(text, method="progression", minimize=False)
        counts = monitor.transition_counts()
        assert (counts["total"], counts["outgoing"], counts["self_loops"]) == expected
