"""Tests for NNF rewriting and the reference (lasso) semantics."""

import pytest

from repro.ltl import (
    FALSE,
    TRUE,
    Atom,
    Not,
    Verdict,
    all_assignments,
    evaluate_lasso,
    ltl3_bruteforce,
    parse,
    simplify,
    to_nnf,
)
from repro.ltl.ast import And, Next, Or, Release, Until
from repro.ltl.rewriting import expand, negate


def letters(*names):
    """Shorthand building a trace of letters from strings like 'pq', '', 'q'."""
    return [frozenset(name) for name in names]


class TestNNF:
    def test_implication_expanded(self):
        assert to_nnf(parse("p -> q")) == Or(Not(Atom("p")), Atom("q"))

    def test_eventually_expanded_to_until(self):
        assert to_nnf(parse("F p")) == Until(TRUE, Atom("p"))

    def test_always_expanded_to_release(self):
        assert to_nnf(parse("G p")) == Release(FALSE, Atom("p"))

    def test_negated_until_becomes_release(self):
        f = to_nnf(parse("!(p U q)"))
        assert isinstance(f, Release)
        assert f.left == Not(Atom("p"))
        assert f.right == Not(Atom("q"))

    def test_negated_release_becomes_until(self):
        f = to_nnf(parse("!(p R q)"))
        assert isinstance(f, Until)

    def test_double_negation_removed(self):
        assert to_nnf(parse("!!p")) == Atom("p")

    def test_negation_pushed_through_next(self):
        assert to_nnf(parse("!X p")) == Next(Not(Atom("p")))

    def test_de_morgan(self):
        assert to_nnf(parse("!(p & q)")) == Or(Not(Atom("p")), Not(Atom("q")))
        assert to_nnf(parse("!(p | q)")) == And(Not(Atom("p")), Not(Atom("q")))

    def test_nnf_contains_no_negated_compounds(self):
        f = to_nnf(parse("!((p -> q) U (G r))"))
        for sub in f.walk():
            if isinstance(sub, Not):
                assert isinstance(sub.operand, Atom)

    def test_negate_is_involutive_semantically(self):
        f = parse("(p U q) & G r")
        trace_prefix = letters("p", "pq")
        loop = letters("r")
        assert evaluate_lasso(f, trace_prefix, loop) != evaluate_lasso(
            negate(f), trace_prefix, loop
        )

    @pytest.mark.parametrize(
        "formula",
        ["p", "!p", "p & q", "p | q", "p U q", "p R q", "X p", "F p", "G p",
         "p -> q", "p <-> q", "G(p -> F q)", "!((a U b) | X c)"],
    )
    def test_nnf_preserves_semantics_on_sample_lassos(self, formula):
        f = parse(formula)
        g = to_nnf(f)
        atoms = ("a", "b", "c", "p", "q", "r")
        samples = [
            (letters("p", "q"), letters("pq")),
            (letters(""), letters("")),
            (letters("a"), letters("b", "c")),
            (letters(), letters("pqr")),
            (letters("q"), letters("p")),
        ]
        for prefix, loop in samples:
            assert evaluate_lasso(f, prefix, loop) == evaluate_lasso(g, prefix, loop)


class TestSimplify:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("p & true", "p"),
            ("true & p", "p"),
            ("p & false", "false"),
            ("p | true", "true"),
            ("p | false", "p"),
            ("p & p", "p"),
            ("p | p", "p"),
            ("!true", "false"),
            ("!false", "true"),
            ("X true", "true"),
            ("p U true", "true"),
            ("p U false", "false"),
            ("p R true", "true"),
        ],
    )
    def test_constant_folding(self, text, expected):
        assert simplify(parse(text)) == parse(expected)

    def test_expand_removes_sugar(self):
        f = expand(parse("G(p <-> q)"))
        from repro.ltl.ast import Iff, Implies, Eventually as Ev, Always as Al

        for sub in f.walk():
            assert not isinstance(sub, (Iff, Implies, Ev, Al))


class TestLassoSemantics:
    def test_atom_at_position_zero(self):
        assert evaluate_lasso(parse("p"), letters("p"), letters(""))
        assert not evaluate_lasso(parse("p"), letters(""), letters("p"))

    def test_next(self):
        assert evaluate_lasso(parse("X p"), letters("", "p"), letters(""))
        assert not evaluate_lasso(parse("X p"), letters("p", ""), letters(""))

    def test_next_wraps_into_loop(self):
        # word = "" ("p")^w : X p holds at position 0
        assert evaluate_lasso(parse("X p"), letters(""), letters("p"))

    def test_always_on_loop(self):
        assert evaluate_lasso(parse("G p"), [], letters("p"))
        assert not evaluate_lasso(parse("G p"), letters("p"), letters("p", ""))

    def test_eventually(self):
        assert evaluate_lasso(parse("F p"), letters("", "", "p"), letters(""))
        assert not evaluate_lasso(parse("F p"), letters("", ""), letters(""))

    def test_until_requires_eventual_right(self):
        assert evaluate_lasso(parse("p U q"), letters("p", "p", "q"), letters(""))
        assert not evaluate_lasso(parse("p U q"), letters("p"), letters("p"))

    def test_until_fails_when_left_breaks(self):
        assert not evaluate_lasso(parse("p U q"), letters("p", "", "q"), letters(""))

    def test_release_held_forever(self):
        assert evaluate_lasso(parse("p R q"), [], letters("q"))

    def test_release_released(self):
        assert evaluate_lasso(parse("p R q"), letters("q", "pq"), letters(""))
        assert not evaluate_lasso(parse("p R q"), letters("q", "p"), letters(""))

    def test_nested_gf(self):
        # G F p on a loop that contains p infinitely often
        assert evaluate_lasso(parse("G F p"), letters(""), letters("", "p"))
        assert not evaluate_lasso(parse("G F p"), letters("p"), letters(""))

    def test_response_property(self):
        f = parse("G(r -> F g)")
        assert evaluate_lasso(f, letters("r", "g"), letters(""))
        assert not evaluate_lasso(f, letters("r"), letters(""))

    def test_position_argument(self):
        f = parse("p")
        assert evaluate_lasso(f, letters("", "p"), letters(""), position=1)

    def test_position_out_of_range(self):
        with pytest.raises(IndexError):
            evaluate_lasso(parse("p"), letters("p"), letters(""), position=5)

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            evaluate_lasso(parse("p"), letters("p"), [])


class TestAssignments:
    def test_all_assignments_count(self):
        assert len(all_assignments(["a", "b", "c"])) == 8

    def test_all_assignments_unique(self):
        assignments = all_assignments(["a", "b"])
        assert len(set(assignments)) == 4

    def test_empty_atom_list(self):
        assert all_assignments([]) == [frozenset()]


class TestBruteforceLTL3:
    def test_safety_violation_is_bottom(self):
        assert ltl3_bruteforce(parse("G p"), letters("p", "")) is Verdict.BOTTOM

    def test_cosafety_satisfaction_is_top(self):
        assert ltl3_bruteforce(parse("F p"), letters("", "p")) is Verdict.TOP

    def test_open_trace_is_inconclusive(self):
        assert ltl3_bruteforce(parse("F p"), letters("", "")) is Verdict.INCONCLUSIVE
        assert ltl3_bruteforce(parse("G p"), letters("p", "p")) is Verdict.INCONCLUSIVE

    def test_empty_trace(self):
        assert ltl3_bruteforce(parse("G p"), []) is Verdict.INCONCLUSIVE
        assert ltl3_bruteforce(parse("true"), []) is Verdict.TOP
        assert ltl3_bruteforce(parse("false"), []) is Verdict.BOTTOM

    def test_until_example_from_paper(self):
        # ψ = G((x1>=5) -> ((x2>=15) U (x1=10))) over the running example
        psi = parse("G(a -> (b U c))")  # a = x1>=5, b = x2>=15, c = x1=10
        violating = [frozenset(), frozenset({"a"})]  # a true, b false, c false
        assert ltl3_bruteforce(psi, violating) is Verdict.BOTTOM
        pending = [frozenset(), frozenset({"a", "b"})]
        assert ltl3_bruteforce(psi, pending) is Verdict.INCONCLUSIVE
