"""Compiled monitor kernel: equivalence to the interpreted Moore machine."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.ltl import CompiledMachine, build_monitor, compile_machine
from repro.ltl.ast import (
    Always,
    And,
    Atom,
    Eventually,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
)
from repro.ltl.dfa import _PROJECTION_CACHE_LIMIT, MooreMachine
from repro.ltl.verdict import Verdict

ATOMS = ("p", "q", "r")


def formulas(max_depth=3):
    """Random LTL formulas over ATOMS (mirrors test_hypothesis_ltl)."""
    leaves = st.sampled_from([Atom(a) for a in ATOMS])

    def extend(children):
        unary = st.builds(
            lambda op, f: op(f),
            st.sampled_from([Not, Next, Eventually, Always]),
            children,
        )
        binary = st.builds(
            lambda op, f, g: op(f, g),
            st.sampled_from([And, Or, Implies, Until, Release]),
            children,
            children,
        )
        return unary | binary

    return st.recursive(leaves, extend, max_leaves=6)

#: letters drawn over the machine's atoms plus foreign atoms of processes
#: the formula never mentions — these must be projected away identically by
#: both kernels
FOREIGN = ("P7.x", "P8.y")
letters_with_foreign = st.frozensets(st.sampled_from(ATOMS + FOREIGN))
words = st.lists(letters_with_foreign, min_size=0, max_size=30)


class TestCompileMachine:
    def test_case_study_machines_compile(self):
        monitor = build_monitor("F(P0.p & P1.p)", atoms=("P0.p", "P1.p", "P2.p"))
        compiled = monitor.compiled
        assert isinstance(compiled, CompiledMachine)
        assert compiled.n_letters == 8
        assert compiled.initial == monitor.initial_state
        assert len(compiled.table) == compiled.num_states * compiled.n_letters

    def test_compiled_property_is_cached(self):
        monitor = build_monitor("G p", atoms=("p",))
        assert monitor.compiled is monitor.compiled

    def test_mask_is_column_index(self):
        # atoms in sorted order define the bit layout: atom i <-> bit 1<<i
        monitor = build_monitor("p U q", atoms=("p", "q"))
        compiled = monitor.compiled
        assert compiled.atoms == ("p", "q")
        assert compiled.encode(frozenset()) == 0
        assert compiled.encode({"p"}) == 1
        assert compiled.encode({"q"}) == 2
        assert compiled.encode({"p", "q"}) == 3
        for mask in range(compiled.n_letters):
            assert compiled.encode(compiled.decode(mask)) == mask

    def test_foreign_atoms_projected_in_encode(self):
        monitor = build_monitor("F p", atoms=("p",))
        compiled = monitor.compiled
        assert compiled.encode({"p", "P7.x"}) == compiled.encode({"p"})
        assert compiled.encode({"P7.x"}) == 0

    def test_incomplete_alphabet_returns_none(self):
        machine = MooreMachine(
            letters=(frozenset(), frozenset({"p", "q"})),  # {p}, {q} missing
            initial=0,
            delta=[[0, 1], [1, 1]],
            outputs=[Verdict.INCONCLUSIVE, Verdict.TOP],
        )
        assert compile_machine(machine) is None

    def test_oversized_table_returns_none(self, monkeypatch):
        import repro.ltl.compiled as compiled_mod

        monkeypatch.setattr(compiled_mod, "MAX_TABLE_ENTRIES", 4)
        monitor = build_monitor("p U q", atoms=("p", "q"))
        assert compile_machine(monitor._machine) is None

    def test_final_flags_follow_verdicts(self):
        monitor = build_monitor("F p", atoms=("p",))
        compiled = monitor.compiled
        for state in range(compiled.num_states):
            assert compiled.is_final(state) == monitor.is_final(state)
            assert compiled.output(state) == monitor.verdict(state)
        assert compiled.final_absorbing  # ⊤/⊥ are trap states in LTL3


class TestCompiledEquivalence:
    @given(formulas(), words)
    @settings(max_examples=150, deadline=None)
    def test_step_sequence_identical(self, formula, word):
        """Random formula × random word (with foreign atoms): both kernels
        visit the same state and verdict sequence."""
        monitor = build_monitor(formula, atoms=ATOMS)
        compiled = monitor.compiled
        assert compiled is not None
        state = monitor.initial_state
        cstate = compiled.initial
        assert state == cstate
        for letter in word:
            state = monitor.step(state, letter)
            cstate = compiled.step(cstate, compiled.encode(letter))
            assert cstate == state
            assert compiled.output(cstate) == monitor.verdict(state)
            assert compiled.is_final(cstate) == monitor.is_final(state)

    @given(formulas(), words)
    @settings(max_examples=100, deadline=None)
    def test_run_batch_matches_interpreted_trajectory(self, formula, word):
        monitor = build_monitor(formula, atoms=ATOMS)
        compiled = monitor.compiled
        masks = compiled.encode_many(word)
        state = monitor.initial_state
        first_final = -1
        for i, letter in enumerate(word):
            state = monitor.step(state, letter)
            if first_final < 0 and monitor.is_final(state):
                first_final = i
        assert compiled.run_batch(compiled.initial, masks) == (state, first_final)
        assert compiled.run(masks) == state

    @given(formulas(), words)
    @settings(max_examples=60, deadline=None)
    def test_run_batch_from_every_visited_state(self, formula, word):
        """Batching must agree with stepping from arbitrary mid-run states,
        including conclusive ones (absorbing fast path)."""
        monitor = build_monitor(formula, atoms=ATOMS)
        compiled = monitor.compiled
        masks = compiled.encode_many(word)
        start = monitor.initial_state
        for cut in range(len(word) + 1):
            state = start
            first_final = -1
            for i in range(cut, len(word)):
                state = monitor.step(state, word[i])
                if first_final < 0 and monitor.is_final(state):
                    first_final = i - cut
            assert compiled.run_batch(start, masks[cut:]) == (state, first_final)
            if cut < len(word):
                start = monitor.step(start, word[cut])

    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_table_totality(self, formula):
        """Every (state, mask) cell agrees with the interpreted step."""
        monitor = build_monitor(formula, atoms=ATOMS)
        compiled = monitor.compiled
        for state in range(compiled.num_states):
            for mask in range(compiled.n_letters):
                assert compiled.step(state, mask) == monitor.step(
                    state, compiled.decode(mask)
                )

    @given(st.lists(st.lists(st.integers(0, 7), min_size=5, max_size=5),
                    min_size=0, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_combine_batch_is_per_event_or(self, rows):
        monitor = build_monitor("p U (q & r)", atoms=ATOMS)
        compiled = monitor.compiled
        combined = compiled.combine_batch(rows)
        if not rows:
            assert combined == []
            return
        for i, value in enumerate(combined):
            expected = 0
            for row in rows:
                expected |= row[i]
            assert value == expected

    def test_combine_batch_pure_python_fallback(self, monkeypatch):
        import repro.ltl.compiled as compiled_mod

        monitor = build_monitor("F p", atoms=("p", "q"))
        compiled = monitor.compiled
        rows = [[0, 1, 2, 3], [1, 1, 0, 0], [2, 0, 2, 0]]
        with_numpy = compiled.combine_batch(rows)
        monkeypatch.setattr(compiled_mod, "_np", None)
        assert compiled.combine_batch(rows) == with_numpy == [3, 1, 2, 3]

    def test_outputs_batch_matches_scalar_lookup(self, monkeypatch):
        import repro.ltl.compiled as compiled_mod

        monitor = build_monitor("F(p & q)", atoms=("p", "q"))
        compiled = monitor.compiled
        states = [i % compiled.num_states for i in range(200)]
        expected = [compiled.outputs[s] for s in states]
        assert compiled.outputs_batch(states) == expected
        monkeypatch.setattr(compiled_mod, "_np", None)
        assert compiled.outputs_batch(states) == expected

    def test_numpy_table_view_matches_flat_table(self):
        import repro.ltl.compiled as compiled_mod

        monitor = build_monitor("p U q", atoms=("p", "q"))
        compiled = monitor.compiled
        view = compiled.numpy_table()
        if compiled_mod._np is None:
            assert view is None
            return
        assert view.shape == (compiled.num_states, compiled.n_letters)
        for state in range(compiled.num_states):
            for mask in range(compiled.n_letters):
                assert view[state, mask] == compiled.step(state, mask)


class TestProjectionCacheBound:
    def test_foreign_letter_stream_does_not_grow_cache_unboundedly(self):
        """Regression: a stream of ever-distinct foreign letters used to add
        one cache entry per letter, leaking memory on long runs."""
        monitor = build_monitor("F p", atoms=("p",))
        machine = monitor._machine
        state = machine.initial
        for i in range(_PROJECTION_CACHE_LIMIT + 500):
            state = machine.step(state, frozenset({"p", f"foreign.{i}"}))
        assert len(machine._letter_index) <= len(machine.letters) + _PROJECTION_CACHE_LIMIT

    def test_projection_still_correct_once_cache_is_full(self):
        monitor = build_monitor("p U q", atoms=("p", "q"))
        machine = monitor._machine
        # saturate the cache
        for i in range(_PROJECTION_CACHE_LIMIT + 10):
            machine.step(machine.initial, frozenset({f"foreign.{i}"}))
        # uncached foreign letters are still projected correctly
        assert machine.step(machine.initial, frozenset({"q", "zz.unseen"})) == (
            machine.step(machine.initial, frozenset({"q"}))
        )

    def test_alphabet_letters_always_cached(self):
        monitor = build_monitor("p U q", atoms=("p", "q"))
        machine = monitor._machine
        for letter in machine.letters:
            assert machine._letter_index[letter] is not None


@pytest.mark.parametrize("formula,atoms", [
    ("G((P0.p | P1.p) U (P0.q & P1.q))", ("P0.p", "P0.q", "P1.p", "P1.q")),
    ("F(P0.p & P1.p & P2.p)", ("P0.p", "P1.p", "P2.p")),
])
def test_case_study_shaped_formulas_roundtrip(formula, atoms):
    """Deeper spot-check on case-study-shaped formulas and longer words."""
    import random

    monitor = build_monitor(formula, atoms=atoms)
    compiled = monitor.compiled
    rng = random.Random(2015)
    universe = atoms + FOREIGN
    word = [
        frozenset(a for a in universe if rng.random() < 0.4) for _ in range(2000)
    ]
    masks = compiled.encode_many(word)
    state = monitor.initial_state
    first = -1
    for i, letter in enumerate(word):
        state = monitor.step(state, letter)
        if first < 0 and monitor.is_final(state):
            first = i
    assert compiled.run_batch(compiled.initial, masks) == (state, first)
