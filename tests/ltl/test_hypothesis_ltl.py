"""Property-based tests (hypothesis) for the LTL stack."""

import gc

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.ltl import (
    Verdict,
    all_assignments,
    build_monitor,
    evaluate_lasso,
    intern_formula,
    intern_table_size,
    minimize_letters,
    mk_and,
    mk_not,
    mk_or,
    mk_release,
    mk_until,
    parse,
    simplify,
    to_nnf,
)
from repro.ltl.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Until,
)
from repro.ltl.progression import build_progression_machine, canonicalize, progress

ATOMS = ("p", "q", "r")


def formulas(max_depth=3):
    """Hypothesis strategy generating random LTL formulas over ATOMS."""
    leaves = st.sampled_from([Atom(a) for a in ATOMS])

    def extend(children):
        unary = st.builds(
            lambda op, f: op(f),
            st.sampled_from([Not, Next, Eventually, Always]),
            children,
        )
        binary = st.builds(
            lambda op, f, g: op(f, g),
            st.sampled_from([And, Or, Implies, Until, Release]),
            children,
            children,
        )
        return st.one_of(unary, binary)

    return st.recursive(leaves, extend, max_leaves=6)


letters_strategy = st.frozensets(st.sampled_from(ATOMS))
traces = st.lists(letters_strategy, min_size=0, max_size=4)
loops = st.lists(letters_strategy, min_size=1, max_size=3)


class TestRewritingProperties:
    @given(formulas(), traces, loops)
    @settings(max_examples=150, deadline=None)
    def test_nnf_preserves_lasso_semantics(self, formula, prefix, loop):
        assert evaluate_lasso(formula, prefix, loop) == evaluate_lasso(
            to_nnf(formula), prefix, loop
        )

    @given(formulas(), traces, loops)
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_lasso_semantics(self, formula, prefix, loop):
        simplified = simplify(to_nnf(formula))
        assert evaluate_lasso(formula, prefix, loop) == evaluate_lasso(
            simplified, prefix, loop
        )

    @given(formulas(), traces, loops)
    @settings(max_examples=100, deadline=None)
    def test_negation_flips_satisfaction(self, formula, prefix, loop):
        assert evaluate_lasso(formula, prefix, loop) != evaluate_lasso(
            Not(formula), prefix, loop
        )


class TestMonitorProperties:
    @given(formulas(), traces, loops)
    @settings(max_examples=60, deadline=None)
    def test_top_verdict_implies_all_extensions_satisfy(self, formula, prefix, loop):
        """Soundness of ⊤/⊥: a conclusive verdict on a finite trace is
        respected by every (sampled) infinite extension."""
        monitor = build_monitor(formula, atoms=ATOMS)
        verdict = monitor.verdict_of(prefix)
        holds = evaluate_lasso(formula, prefix, loop)
        if verdict is Verdict.TOP:
            assert holds
        elif verdict is Verdict.BOTTOM:
            assert not holds

    @given(formulas(), traces)
    @settings(max_examples=60, deadline=None)
    def test_final_verdicts_are_stable(self, formula, trace):
        monitor = build_monitor(formula, atoms=ATOMS)
        state = monitor.initial_state
        seen_final = None
        for letter in trace:
            state = monitor.step(state, letter)
            verdict = monitor.verdict(state)
            if seen_final is not None:
                assert verdict is seen_final
            elif verdict.is_final:
                seen_final = verdict

    @given(formulas(), traces)
    @settings(max_examples=40, deadline=None)
    def test_firing_conjunctive_transitions_agree_on_target(self, formula, trace):
        monitor = build_monitor(formula, atoms=ATOMS)
        state = monitor.initial_state
        for letter in trace:
            candidates = [
                t
                for t in monitor.transitions
                if t.source == state and t.guard_satisfied(letter)
            ]
            assert len(candidates) >= 1
            assert {t.target for t in candidates} == {monitor.step(state, letter)}
            state = candidates[0].target


def _fresh(formula):
    """A structurally equal but non-interned copy of *formula*.

    Rebuilds the tree through the raw class constructors, bypassing both the
    intern table and the ``mk_*`` canonicalisation — this reconstructs what
    every formula looked like before the hash-consing layer existed.
    """
    if isinstance(formula, TrueConst):
        return TrueConst()
    if isinstance(formula, FalseConst):
        return FalseConst()
    if isinstance(formula, Atom):
        return Atom(formula.name)
    children = [_fresh(child) for child in formula.children]
    return type(formula)(*children)


# -- reference (pre-interning) canonicaliser and progression -----------------
# A faithful reimplementation of the historical string-keyed algorithm, used
# to assert that the hash-consed kernel computes identical automata.


def _ref_flatten(formula, cls):
    if isinstance(formula, cls):
        return _ref_flatten(formula.left, cls) + _ref_flatten(formula.right, cls)
    return [formula]


def _ref_canonicalize(formula):
    if isinstance(formula, (TrueConst, FalseConst, Atom)):
        return formula
    if isinstance(formula, Not):
        inner = _ref_canonicalize(formula.operand)
        if isinstance(inner, TrueConst):
            return FALSE
        if isinstance(inner, FalseConst):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, Next):
        return Next(_ref_canonicalize(formula.operand))
    if isinstance(formula, Until):
        return Until(_ref_canonicalize(formula.left), _ref_canonicalize(formula.right))
    if isinstance(formula, Release):
        return Release(_ref_canonicalize(formula.left), _ref_canonicalize(formula.right))
    if isinstance(formula, (And, Or)):
        cls = And if isinstance(formula, And) else Or
        absorbing = FALSE if cls is And else TRUE
        identity = TRUE if cls is And else FALSE
        operands = []
        seen = set()
        for operand in _ref_flatten(formula, cls):
            operand = _ref_canonicalize(operand)
            if operand == absorbing:
                return absorbing
            if operand == identity:
                continue
            for part in _ref_flatten(operand, cls):
                key = str(part)
                if key not in seen:
                    seen.add(key)
                    operands.append(part)
        if not operands:
            return identity
        operands.sort(key=str)
        result = operands[0]
        for operand in operands[1:]:
            result = cls(result, operand)
        return result
    return _ref_canonicalize(to_nnf(formula))


def _ref_progress(formula, letter):
    if isinstance(formula, (TrueConst, FalseConst)):
        return formula
    if isinstance(formula, Atom):
        return TRUE if formula.name in letter else FALSE
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, Atom):
            return FALSE if inner.name in letter else TRUE
        return _ref_canonicalize(Not(_ref_progress(inner, letter)))
    if isinstance(formula, And):
        return _ref_canonicalize(
            And(_ref_progress(formula.left, letter), _ref_progress(formula.right, letter))
        )
    if isinstance(formula, Or):
        return _ref_canonicalize(
            Or(_ref_progress(formula.left, letter), _ref_progress(formula.right, letter))
        )
    if isinstance(formula, Next):
        return _ref_canonicalize(formula.operand)
    if isinstance(formula, Until):
        return _ref_canonicalize(
            Or(
                _ref_progress(formula.right, letter),
                And(_ref_progress(formula.left, letter), formula),
            )
        )
    if isinstance(formula, Release):
        return _ref_canonicalize(
            And(
                _ref_progress(formula.right, letter),
                Or(_ref_progress(formula.left, letter), formula),
            )
        )
    return _ref_progress(to_nnf(formula), letter)


def _ref_progression_machine(formula, atoms, max_states):
    """String-keyed progression automaton, exactly as built pre-interning.

    ``max_states`` bounds the construction: the reference algorithm is
    deliberately unmemoized, so without a cap an unlucky formula draw could
    grind for minutes.
    """
    letters = tuple(all_assignments(atoms))
    initial = _ref_canonicalize(to_nnf(formula))
    index = {str(initial): 0}
    formulas = [initial]
    delta = []
    frontier = [0]
    while frontier:
        state = frontier.pop(0)
        while len(delta) <= state:
            delta.append([])
        row = []
        for letter in letters:
            successor = _ref_progress(formulas[state], letter)
            key = str(successor)
            if key not in index:
                if len(formulas) >= max_states:
                    raise RuntimeError("reference construction exceeded max_states")
                index[key] = len(formulas)
                formulas.append(successor)
                frontier.append(index[key])
            row.append(index[key])
        delta[state] = row
    return [str(f) for f in formulas], delta


class TestInterning:
    @given(formulas())
    @settings(max_examples=150, deadline=None)
    def test_intern_formula_is_canonical_identity(self, formula):
        interned = intern_formula(formula)
        assert interned == formula
        # structurally equal fresh copies intern to the very same object
        assert intern_formula(_fresh(formula)) is interned
        assert intern_formula(interned) is interned

    @given(formulas())
    @settings(max_examples=150, deadline=None)
    def test_canonicalize_is_idempotent_and_interned(self, formula):
        canonical = canonicalize(formula)
        assert canonicalize(canonical) is canonical
        # the same input always canonicalises to the same object
        assert canonicalize(_fresh(formula)) is canonical

    @given(formulas(), traces, loops)
    @settings(max_examples=100, deadline=None)
    def test_canonicalize_preserves_lasso_semantics(self, formula, prefix, loop):
        assert evaluate_lasso(formula, prefix, loop) == evaluate_lasso(
            canonicalize(to_nnf(formula)), prefix, loop
        )

    @given(formulas())
    @settings(max_examples=150, deadline=None)
    def test_mk_constructors_are_idempotent(self, formula):
        c = canonicalize(to_nnf(formula))
        # conjunction/disjunction with itself collapses to the same object
        assert mk_and(c, c) is c
        assert mk_or(c, c) is c
        # double negation round-trips to the identical node
        assert mk_not(mk_not(c)) is c
        # rebuilding a canonical binary node from its own parts is a no-op
        if isinstance(c, (And, Or)):
            mk = mk_and if isinstance(c, And) else mk_or
            assert mk(c.left, c.right) is c
        if isinstance(c, Until):
            assert mk_until(c.left, c.right) is c
        if isinstance(c, Release):
            assert mk_release(c.left, c.right) is c

    @given(formulas())
    @settings(max_examples=40, deadline=None)
    def test_interned_progression_matches_reference_machine(self, formula):
        # Bound the comparison: progression automata can blow up, and the
        # unmemoized reference would grind on such draws.  The interned
        # builder (cheap) probes the size first; oversized draws are
        # discarded.  Since both algorithms construct the same state space,
        # the reference then converges within the same bound — a RuntimeError
        # from it would itself be a mismatch and fail the test.
        bound = 64
        try:
            machine, state_formulas = build_progression_machine(
                formula, atoms=ATOMS, max_states=bound
            )
        except RuntimeError:
            assume(False)  # automaton too large to compare cheaply
        ref_names, ref_delta = _ref_progression_machine(formula, ATOMS, max_states=bound)
        assert machine.state_names == ref_names
        assert machine.delta == ref_delta
        assert [str(f) for f in state_formulas] == ref_names

    @given(formulas(), letters_strategy)
    @settings(max_examples=150, deadline=None)
    def test_progress_memo_is_stable(self, formula, letter):
        first = progress(formula, letter)
        assert progress(formula, letter) is first
        # a structurally equal canonical formula progresses identically
        assert progress(canonicalize(to_nnf(formula)), letter) == _ref_progress(
            _ref_canonicalize(to_nnf(formula)), letter
        )

    def test_intern_table_bounded_under_max_states_guard(self):
        # A progression abandoned by the max_states guard must not leak its
        # intermediate formulas: the intern table holds only weak references,
        # so the working set is reclaimed once the construction unwinds.
        # The atoms are unique to this test — a formula shared with other
        # tests (e.g. a case-study property kept alive by the monitor cache)
        # would legitimately retain its progression cache.
        formula = parse(
            "G((z0 U (z1 & z2 & z3)) & (z4 U (z5 & z6 & z7)))"
        )
        gc.collect()
        before = intern_table_size()
        try:
            build_progression_machine(formula, max_states=3)
            raise AssertionError("expected the max_states guard to trigger")
        except RuntimeError:
            pass
        del formula
        gc.collect()
        after = intern_table_size()
        # everything the aborted construction interned is collectable; only
        # nodes owned by other live objects (e.g. other tests' caches) remain
        assert after <= before + 5


class TestBoolminProperties:
    @given(st.sets(st.frozensets(st.sampled_from(("a", "b", "c", "d")))))
    @settings(max_examples=200, deadline=None)
    def test_cover_is_exact(self, letters):
        variables = ("a", "b", "c", "d")
        implicants = minimize_letters(letters, variables)
        covered = set()
        for assignment in all_assignments(variables):
            for implicant in implicants:
                if all(
                    (var in assignment) == value for var, value in implicant.items()
                ):
                    covered.add(assignment)
                    break
        assert covered == set(letters)
