"""Property-based tests (hypothesis) for the LTL stack."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ltl import (
    Verdict,
    all_assignments,
    build_monitor,
    evaluate_lasso,
    minimize_letters,
    parse,
    simplify,
    to_nnf,
)
from repro.ltl.ast import (
    Always,
    And,
    Atom,
    Eventually,
    Formula,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
)

ATOMS = ("p", "q", "r")


def formulas(max_depth=3):
    """Hypothesis strategy generating random LTL formulas over ATOMS."""
    leaves = st.sampled_from([Atom(a) for a in ATOMS])

    def extend(children):
        unary = st.builds(
            lambda op, f: op(f),
            st.sampled_from([Not, Next, Eventually, Always]),
            children,
        )
        binary = st.builds(
            lambda op, f, g: op(f, g),
            st.sampled_from([And, Or, Implies, Until, Release]),
            children,
            children,
        )
        return st.one_of(unary, binary)

    return st.recursive(leaves, extend, max_leaves=6)


letters_strategy = st.frozensets(st.sampled_from(ATOMS))
traces = st.lists(letters_strategy, min_size=0, max_size=4)
loops = st.lists(letters_strategy, min_size=1, max_size=3)


class TestRewritingProperties:
    @given(formulas(), traces, loops)
    @settings(max_examples=150, deadline=None)
    def test_nnf_preserves_lasso_semantics(self, formula, prefix, loop):
        assert evaluate_lasso(formula, prefix, loop) == evaluate_lasso(
            to_nnf(formula), prefix, loop
        )

    @given(formulas(), traces, loops)
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_lasso_semantics(self, formula, prefix, loop):
        simplified = simplify(to_nnf(formula))
        assert evaluate_lasso(formula, prefix, loop) == evaluate_lasso(
            simplified, prefix, loop
        )

    @given(formulas(), traces, loops)
    @settings(max_examples=100, deadline=None)
    def test_negation_flips_satisfaction(self, formula, prefix, loop):
        assert evaluate_lasso(formula, prefix, loop) != evaluate_lasso(
            Not(formula), prefix, loop
        )


class TestMonitorProperties:
    @given(formulas(), traces, loops)
    @settings(max_examples=60, deadline=None)
    def test_top_verdict_implies_all_extensions_satisfy(self, formula, prefix, loop):
        """Soundness of ⊤/⊥: a conclusive verdict on a finite trace is
        respected by every (sampled) infinite extension."""
        monitor = build_monitor(formula, atoms=ATOMS)
        verdict = monitor.verdict_of(prefix)
        holds = evaluate_lasso(formula, prefix, loop)
        if verdict is Verdict.TOP:
            assert holds
        elif verdict is Verdict.BOTTOM:
            assert not holds

    @given(formulas(), traces)
    @settings(max_examples=60, deadline=None)
    def test_final_verdicts_are_stable(self, formula, trace):
        monitor = build_monitor(formula, atoms=ATOMS)
        state = monitor.initial_state
        seen_final = None
        for letter in trace:
            state = monitor.step(state, letter)
            verdict = monitor.verdict(state)
            if seen_final is not None:
                assert verdict is seen_final
            elif verdict.is_final:
                seen_final = verdict

    @given(formulas(), traces)
    @settings(max_examples=40, deadline=None)
    def test_firing_conjunctive_transitions_agree_on_target(self, formula, trace):
        monitor = build_monitor(formula, atoms=ATOMS)
        state = monitor.initial_state
        for letter in trace:
            candidates = [
                t
                for t in monitor.transitions
                if t.source == state and t.guard_satisfied(letter)
            ]
            assert len(candidates) >= 1
            assert {t.target for t in candidates} == {monitor.step(state, letter)}
            state = candidates[0].target


class TestBoolminProperties:
    @given(st.sets(st.frozensets(st.sampled_from(("a", "b", "c", "d")))))
    @settings(max_examples=200, deadline=None)
    def test_cover_is_exact(self, letters):
        variables = ("a", "b", "c", "d")
        implicants = minimize_letters(letters, variables)
        covered = set()
        for assignment in all_assignments(variables):
            for implicant in implicants:
                if all(
                    (var in assignment) == value for var, value in implicant.items()
                ):
                    covered.add(assignment)
                    break
        assert covered == set(letters)
