"""Tests for the Quine–McCluskey boolean minimiser."""

import itertools

import pytest

from repro.ltl import implicant_to_str, minimize_letters


def truth_table(variables, implicants):
    """The set of assignments (as frozensets) covered by a list of implicants."""
    covered = set()
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        letter = frozenset(v for v, b in assignment.items() if b)
        for implicant in implicants:
            if all(assignment[v] == val for v, val in implicant.items()):
                covered.add(letter)
                break
    return covered


class TestMinimizeLetters:
    def test_empty_input_is_false(self):
        assert minimize_letters([], ["a", "b"]) == []

    def test_full_truth_table_is_true(self):
        letters = [frozenset(), frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})]
        assert minimize_letters(letters, ["a", "b"]) == [{}]

    def test_single_minterm(self):
        result = minimize_letters([frozenset({"a"})], ["a", "b"])
        assert result == [{"a": True, "b": False}]

    def test_single_variable_dont_care(self):
        letters = [frozenset({"a"}), frozenset({"a", "b"})]
        assert minimize_letters(letters, ["a", "b"]) == [{"a": True}]

    def test_negated_variable(self):
        letters = [frozenset(), frozenset({"b"})]
        assert minimize_letters(letters, ["a", "b"]) == [{"a": False}]

    def test_nand_needs_two_implicants(self):
        # !(a & b) = !a | !b
        letters = [frozenset(), frozenset({"a"}), frozenset({"b"})]
        result = minimize_letters(letters, ["a", "b"])
        assert len(result) == 2
        assert {"a": False} in result and {"b": False} in result

    def test_xor_needs_two_full_terms(self):
        letters = [frozenset({"a"}), frozenset({"b"})]
        result = minimize_letters(letters, ["a", "b"])
        assert sorted(result, key=str) == sorted(
            [{"a": True, "b": False}, {"a": False, "b": True}], key=str
        )

    def test_three_variable_consensus(self):
        # f = a&b | !a&c  (minimal SOP has 2 terms; the consensus term b&c is redundant)
        variables = ["a", "b", "c"]
        letters = []
        for bits in itertools.product((False, True), repeat=3):
            a, b, c = bits
            if (a and b) or ((not a) and c):
                letters.append(frozenset(v for v, x in zip(variables, bits) if x))
        result = minimize_letters(letters, variables)
        assert len(result) == 2

    @pytest.mark.parametrize("num_vars", [1, 2, 3, 4])
    def test_cover_exactness_exhaustive(self, num_vars):
        """The minimised cover is logically equivalent to the input set."""
        variables = [f"v{i}" for i in range(num_vars)]
        all_letters = [
            frozenset(v for v, b in zip(variables, bits) if b)
            for bits in itertools.product((False, True), repeat=num_vars)
        ]
        import random

        rng = random.Random(42 + num_vars)
        for _ in range(20):
            chosen = [letter for letter in all_letters if rng.random() < 0.5]
            implicants = minimize_letters(chosen, variables)
            assert truth_table(variables, implicants) == set(chosen)

    def test_letters_with_unknown_atoms_are_projected(self):
        # atoms outside the variable list are ignored
        letters = [frozenset({"a", "zzz"}), frozenset({"a"})]
        assert minimize_letters(letters, ["a"]) == [{"a": True}]

    def test_disjoint_conjunction_structure(self):
        # !(a&b) & !(c&d) has minimal SOP with exactly 4 products
        variables = ["a", "b", "c", "d"]
        letters = []
        for bits in itertools.product((False, True), repeat=4):
            a, b, c, d = bits
            if not (a and b) and not (c and d):
                letters.append(frozenset(v for v, x in zip(variables, bits) if x))
        result = minimize_letters(letters, variables)
        assert len(result) == 4
        assert truth_table(variables, result) == set(letters)


class TestImplicantToStr:
    def test_true(self):
        assert implicant_to_str({}) == "true"

    def test_mixed_literals_sorted(self):
        assert implicant_to_str({"b": False, "a": True}) == "a & !b"
