"""Tests for the LTL -> Büchi translation and per-state emptiness."""

import pytest

from repro.ltl import (
    Not,
    ltl_to_buchi,
    nonempty_states,
    parse,
)
from repro.ltl.buchi import Guard, is_satisfiable


def accepts_prefix(automaton, word):
    """Whether some run on *word* ends in a state with non-empty language."""
    live = nonempty_states(automaton)
    return bool(automaton.run_prefix(word) & live)


def w(*names):
    return [frozenset(name) for name in names]


class TestGuard:
    def test_satisfaction(self):
        g = Guard(frozenset({"a"}), frozenset({"b"}))
        assert g.satisfied_by(frozenset({"a"}))
        assert g.satisfied_by(frozenset({"a", "c"}))
        assert not g.satisfied_by(frozenset({"a", "b"}))
        assert not g.satisfied_by(frozenset())

    def test_empty_guard_is_true(self):
        g = Guard(frozenset(), frozenset())
        assert g.satisfied_by(frozenset())
        assert str(g) == "true"

    def test_consistency(self):
        assert Guard(frozenset({"a"}), frozenset({"b"})).is_consistent()
        assert not Guard(frozenset({"a"}), frozenset({"a"})).is_consistent()


class TestBuchiConstruction:
    @pytest.mark.parametrize(
        "text",
        ["p", "!p", "p & q", "p | q", "X p", "p U q", "p R q", "F p", "G p",
         "G F p", "F G p", "G(p -> F q)", "G(p -> (q U r))", "(p U q) & (r U s)"],
    )
    def test_automaton_well_formed(self, text):
        automaton = ltl_to_buchi(parse(text))
        assert automaton.initial <= automaton.states
        assert automaton.accepting <= automaton.states
        for state, edges in automaton.transitions.items():
            assert state in automaton.states
            for guard, target in edges:
                assert target in automaton.states
                assert guard.is_consistent()

    def test_satisfiable_formulas_have_nonempty_language(self):
        for text in ["p", "F p", "G p", "p U q", "G F p", "G(p -> F q)"]:
            assert is_satisfiable(parse(text)), text

    def test_unsatisfiable_formulas(self):
        for text in ["false", "p & !p", "F p & G !p", "(G p) & F !p"]:
            assert not is_satisfiable(parse(text)), text

    def test_valid_formula_negation_unsat(self):
        assert not is_satisfiable(Not(parse("p | !p")))
        assert not is_satisfiable(Not(parse("(G p) -> p")))


class TestPrefixAcceptance:
    """``accepts_prefix`` realises the B̂_φ NFA of the LTL3 construction:
    a finite word is accepted iff it has an infinite extension satisfying φ."""

    def test_safety_prefix(self):
        automaton = ltl_to_buchi(parse("G p"))
        assert accepts_prefix(automaton, w("p", "p"))
        assert not accepts_prefix(automaton, w("p", ""))

    def test_cosafety_prefix(self):
        automaton = ltl_to_buchi(parse("F p"))
        assert accepts_prefix(automaton, w("", ""))  # still extendable
        assert accepts_prefix(automaton, w("p"))

    def test_negation_of_cosafety(self):
        automaton = ltl_to_buchi(parse("!(F p)"))  # G !p
        assert accepts_prefix(automaton, w("", ""))
        assert not accepts_prefix(automaton, w("p"))

    def test_until(self):
        automaton = ltl_to_buchi(parse("p U q"))
        assert accepts_prefix(automaton, w("p", "p"))
        assert accepts_prefix(automaton, w("q"))
        assert not accepts_prefix(automaton, w("", ""))

    def test_empty_word_accepted_iff_satisfiable(self):
        assert accepts_prefix(ltl_to_buchi(parse("G p")), [])
        assert not accepts_prefix(ltl_to_buchi(parse("p & !p")), [])

    def test_next(self):
        automaton = ltl_to_buchi(parse("X p"))
        assert accepts_prefix(automaton, w(""))
        assert accepts_prefix(automaton, w("", "p"))
        assert not accepts_prefix(automaton, w("", ""))

    def test_liveness_never_refutable(self):
        automaton = ltl_to_buchi(parse("G F p"))
        # no finite prefix can rule out G F p
        for word in [[], w(""), w("", ""), w("p", "", "")]:
            assert accepts_prefix(automaton, word)


class TestNonemptyStates:
    def test_all_states_live_for_tautology(self):
        automaton = ltl_to_buchi(parse("true"))
        live = nonempty_states(automaton)
        assert automaton.initial <= live

    def test_no_initial_live_state_for_contradiction(self):
        automaton = ltl_to_buchi(parse("p & !p"))
        live = nonempty_states(automaton)
        assert not (automaton.initial & live)

    def test_live_set_is_subset_of_states(self):
        automaton = ltl_to_buchi(parse("G(p -> (q U r))"))
        assert nonempty_states(automaton) <= automaton.states

    def test_atoms_parameter_recorded(self):
        automaton = ltl_to_buchi(parse("p"), atoms=["p", "q", "r"])
        assert automaton.atoms == ("p", "q", "r")

    def test_counts_are_positive(self):
        automaton = ltl_to_buchi(parse("G(p -> F q)"))
        assert automaton.num_states >= 2
        assert automaton.num_transitions >= 1
