"""CLI backend selection: the flag error matrix and machine-readable output.

The ``run`` command accepts ``--backend {sim,asyncio,cluster}`` with two
backend-specific flags — ``--stream-transport`` (asyncio only) and
``--manifest`` (cluster only).  Mismatched combinations must fail fast with
an ``error:`` line naming both flags, and ``list-scenarios --format json``
must emit the full catalogue as parseable JSON.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import scenario_names

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *argv],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


class TestFlagErrorMatrix:
    @pytest.mark.parametrize("backend", ["sim", "cluster"])
    def test_stream_transport_rejected_off_asyncio(self, backend):
        result = _run_cli(
            "run", "--backend", backend, "--stream-transport", "tcp"
        )
        assert result.returncode == 1
        assert (
            f"error: --stream-transport only applies to --backend asyncio "
            f"(got --backend {backend})" in result.stderr
        )

    @pytest.mark.parametrize("backend", ["sim", "asyncio"])
    def test_manifest_rejected_off_cluster(self, backend):
        result = _run_cli(
            "run", "--backend", backend, "--manifest", "cluster.toml"
        )
        assert result.returncode == 1
        assert (
            f"error: --manifest only applies to --backend cluster "
            f"(got --backend {backend})" in result.stderr
        )

    def test_missing_manifest_file_rejected(self):
        result = _run_cli(
            "run", "--backend", "cluster", "--manifest", "no/such/file.toml"
        )
        assert result.returncode == 1
        assert "error: cluster manifest not found: no/such/file.toml" in result.stderr

    def test_unknown_backend_rejected_by_argparse(self):
        result = _run_cli("run", "--backend", "quantum")
        assert result.returncode == 2
        assert "invalid choice: 'quantum'" in result.stderr

    def test_malformed_fault_plan_rejected(self):
        result = _run_cli("run", "--fault-plan", "not-a-plan")
        assert result.returncode == 1
        assert "error:" in result.stderr


class TestListScenariosJson:
    def test_json_format_emits_full_catalogue(self):
        result = _run_cli("list-scenarios", "--format", "json")
        assert result.returncode == 0, result.stderr
        catalogue = json.loads(result.stdout)
        assert sorted(entry["name"] for entry in catalogue) == list(
            scenario_names()
        )
        for entry in catalogue:
            assert {"name", "description", "workload", "network", "grid"} <= set(
                entry
            )

    def test_table_format_still_default(self):
        result = _run_cli("list-scenarios")
        assert result.returncode == 0, result.stderr
        with pytest.raises(json.JSONDecodeError):
            json.loads(result.stdout)
        for name in scenario_names():
            assert name in result.stdout


class TestClusterBackendCli:
    def test_run_backend_cluster_smoke(self):
        result = _run_cli(
            "run",
            "--scenario",
            "paper-default",
            "--backend",
            "cluster",
            "--processes",
            "2",
            "--events",
            "3",
            "--replications",
            "1",
        )
        assert result.returncode == 0, result.stderr
        assert "backend cluster" in result.stdout
        assert "paper-default" in result.stdout
