"""README quickstart smoke test: the documented commands must run verbatim.

Extracts the ``sh`` code block from the README's Quickstart section and
executes every command exactly as printed (line continuations joined), so
the quickstart cannot drift from the CLI.  CI's *docs* job runs this file.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
README = REPO_ROOT / "README.md"


def quickstart_commands():
    """The commands of the README Quickstart ``sh`` block, one per command."""
    text = README.read_text(encoding="utf-8")
    match = re.search(r"## Quickstart\n(.*?)\n## ", text, re.S)
    assert match, "README has no Quickstart section"
    blocks = re.findall(r"```sh\n(.*?)```", match.group(1), re.S)
    assert blocks, "README Quickstart has no sh code block"
    commands = []
    for block in blocks:
        joined = block.replace("\\\n", " ")
        commands.extend(
            line.strip() for line in joined.splitlines() if line.strip()
        )
    return commands


def test_quickstart_block_present_and_covers_the_advertised_surface():
    commands = quickstart_commands()
    joined = "\n".join(commands)
    assert "list-scenarios" in joined
    assert "run --scenario" in joined
    assert "--backend asyncio" in joined
    # the console script and the module invocation are the same entry point
    readme = README.read_text(encoding="utf-8")
    assert "repro-experiments" in readme


@pytest.mark.parametrize(
    "command", quickstart_commands(), ids=lambda c: c[:60].replace(" ", "_")
)
def test_quickstart_command_runs(command):
    assert command.startswith("PYTHONPATH=src python -m repro.experiments.cli"), (
        f"quickstart commands must be self-contained CLI invocations: {command!r}"
    )
    # drop the "PYTHONPATH=src python" prefix, keep "-m repro.experiments.cli ..."
    argv = command.split()[2:]
    result = subprocess.run(
        [sys.executable, *argv],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, (
        f"README quickstart command failed: {command}\n{result.stderr}"
    )
    assert result.stdout.strip(), "quickstart command produced no output"
