"""Smoke tests for the nightly full-matrix runner (``tools/run_full_matrix.py``)."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "run_full_matrix.py"


def _run_tool(*argv, env_extra=None):
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, str(TOOL), *argv],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
        env=env,
    )


class TestFullMatrixTool:
    def test_narrowed_matrix_emits_combined_document(self, tmp_path):
        out = tmp_path / "BENCH_matrix.json"
        summary = tmp_path / "summary.md"
        result = _run_tool(
            "--out",
            str(out),
            "--scenarios",
            "paper-default",
            "crash-restart-replay",
            "--properties",
            "B",
            "--processes",
            "2",
            "--events",
            "3",
            "--replications",
            "1",
            env_extra={"GITHUB_STEP_SUMMARY": str(summary)},
        )
        assert result.returncode == 0, result.stderr
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["schema"] == "repro-bench/1"
        # one timing per (scenario x backend) cell, tagged for the artifact
        timings = document["timings"]
        assert set(timings) == {
            "matrix_paper-default_sim",
            "matrix_paper-default_asyncio",
            "matrix_crash-restart-replay_sim",
            "matrix_crash-restart-replay_asyncio",
        }
        for record in timings.values():
            assert record["group"] == "full-matrix"
            assert record["backend"] in ("sim", "asyncio")
            assert record["rows"] >= 1
            assert record["seconds"] > 0
        # scenario metadata (including the fault model) rides along
        assert (
            document["scenarios"]["crash-restart-replay"]["faults"]["kind"]
            == "single-crash"
        )
        # the job summary table was appended
        text = summary.read_text(encoding="utf-8")
        assert "Nightly full matrix" in text
        assert "crash-restart-replay" in text

    def test_topology_sweep_extends_labels_backward_compatibly(self, tmp_path):
        out = tmp_path / "BENCH_matrix_topologies.json"
        result = _run_tool(
            "--out",
            str(out),
            "--scenarios",
            "paper-default",
            "--backends",
            "sim",
            "--properties",
            "B",
            "--processes",
            "2",
            "--events",
            "3",
            "--replications",
            "1",
            "--topologies",
            "round-robin-token",
            "gossip",
        )
        assert result.returncode == 0, result.stderr
        timings = json.loads(out.read_text(encoding="utf-8"))["timings"]
        # the default topology keeps the unsuffixed label (artifact schema
        # compatibility); only non-default topologies extend it
        assert set(timings) == {
            "matrix_paper-default_sim",
            "matrix_paper-default_sim_gossip",
        }
        assert timings["matrix_paper-default_sim"]["topology"] == (
            "round-robin-token"
        )
        assert timings["matrix_paper-default_sim_gossip"]["topology"] == "gossip"

    def test_unknown_scenario_fails_fast(self, tmp_path):
        result = _run_tool(
            "--out", str(tmp_path / "BENCH.json"), "--scenarios", "no-such-scenario"
        )
        assert result.returncode == 2
        assert "unknown scenario" in result.stderr

    def test_ci_wires_the_nightly_job(self):
        text = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )
        assert "run_full_matrix.py" in text
        assert "workflow_dispatch" in text
        assert "schedule" in text
        # the nightly topology sweep and the PR-path topology smoke
        assert "--topologies" in text
        assert "BENCH_full_matrix_topologies.json" in text
        assert "--topology" in text
        # PR pushes must never pay for the full matrix
        assert (
            "github.event_name == 'schedule' || github.event_name == 'workflow_dispatch'"
            in text
        )
