"""Tests for the benchmark comparison tool, in particular the missing-baseline path.

Regression: when the previous-main ``bench-json`` artifact was absent (first
run on a branch, expired retention, forks), ``compare_bench.py`` printed one
easily-missed log line and exited 0 — CI looked green with no comparison
having happened.  It must now emit an explicit ``::notice::`` annotation and
a job-summary entry instead of silently passing.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_compare_bench():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", REPO_ROOT / "benchmarks" / "compare_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_bench = _load_compare_bench()


def _write_document(directory, name="BENCH_smoke_test.json", seconds=1.0):
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": compare_bench.SCHEMA,
        "timings": {"kernel_hot_path": {"seconds": seconds}},
    }
    (directory / name).write_text(json.dumps(document), encoding="utf-8")


class TestMissingBaseline:
    def test_missing_baseline_emits_notice_and_summary(self, tmp_path, capsys, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        _write_document(tmp_path / "current")
        code = compare_bench.main(
            ["--previous", str(tmp_path / "missing"), "--current", str(tmp_path / "current")]
        )
        assert code == 0  # advisory: absence is loud, not fatal
        out = capsys.readouterr().out
        assert "::notice title=benchmark baseline missing::" in out
        assert "no benchmark baseline" in out
        text = summary.read_text(encoding="utf-8")
        assert "No baseline available" in text

    def test_missing_baseline_without_github_env_still_explicit(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        _write_document(tmp_path / "current")
        code = compare_bench.main(
            [
                "--previous",
                str(tmp_path / "missing"),
                "--current",
                str(tmp_path / "current"),
                "--no-github",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no benchmark baseline" in out
        assert "::notice" not in out  # annotations suppressed off-CI

    def test_missing_current_documents_reported(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        _write_document(tmp_path / "previous")
        code = compare_bench.main(
            ["--previous", str(tmp_path / "previous"), "--current", str(tmp_path / "empty")]
        )
        assert code == 0
        assert "no current documents" in capsys.readouterr().out


class TestComparison:
    def test_comparison_writes_summary_with_worst_ratio(
        self, tmp_path, capsys, monkeypatch
    ):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        _write_document(tmp_path / "previous", seconds=1.0)
        _write_document(tmp_path / "current", seconds=1.05)
        code = compare_bench.main(
            [
                "--previous",
                str(tmp_path / "previous"),
                "--current",
                str(tmp_path / "current"),
                "--no-github",
            ]
        )
        assert code == 0
        assert "worst ratio" in capsys.readouterr().out
        text = summary.read_text(encoding="utf-8")
        assert "Benchmark comparison" in text
        assert "1.05x" in text

    def test_fail_threshold_still_enforced(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        _write_document(tmp_path / "previous", seconds=1.0)
        _write_document(tmp_path / "current", seconds=2.0)
        code = compare_bench.main(
            [
                "--previous",
                str(tmp_path / "previous"),
                "--current",
                str(tmp_path / "current"),
                "--no-github",
                "--fail-threshold",
                "0.5",
            ]
        )
        assert code == 1

    def test_write_job_summary_noop_without_env(self, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        compare_bench.write_job_summary("ignored")  # must not raise


def _rate_document(directory, rate, seconds=1.0, name="BENCH_smoke_test.json"):
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": compare_bench.SCHEMA,
        "timings": {
            "compiled_step_throughput": {
                "seconds": seconds,
                "events_per_sec": rate,
            }
        },
    }
    (directory / name).write_text(json.dumps(document), encoding="utf-8")


class TestEventsPerSecComparison:
    """Throughput fields compare in the inverted (higher-is-better) direction."""

    def test_rate_drop_is_a_regression(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        _rate_document(tmp_path / "previous", rate=10_000_000.0)
        _rate_document(tmp_path / "current", rate=8_000_000.0)  # 20% slower
        code = compare_bench.main(
            [
                "--previous",
                str(tmp_path / "previous"),
                "--current",
                str(tmp_path / "current"),
                "--no-github",
                "--fail-threshold",
                "0.10",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "compiled_step_throughput:events_per_sec" in out
        assert "<< regression" in out

    def test_rate_gain_is_not_a_regression(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        _rate_document(tmp_path / "previous", rate=8_000_000.0)
        _rate_document(tmp_path / "current", rate=10_000_000.0)
        code = compare_bench.main(
            [
                "--previous",
                str(tmp_path / "previous"),
                "--current",
                str(tmp_path / "current"),
                "--no-github",
                "--fail-threshold",
                "0.10",
            ]
        )
        assert code == 0
        assert "<< regression" not in capsys.readouterr().out

    def test_compare_timings_emits_both_units(self):
        previous = {
            "timings": {"x": {"seconds": 1.0, "events_per_sec": 100.0}}
        }
        current = {
            "timings": {"x": {"seconds": 2.0, "events_per_sec": 50.0}}
        }
        rows = compare_bench.compare_timings(previous, current)
        assert [(name, round(ratio, 6)) for name, _, _, ratio in rows] == [
            ("x", 2.0),
            ("x:events_per_sec", 2.0),  # halved throughput = 2x slowdown
        ]

    def test_github_annotations_use_rate_units(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        _rate_document(tmp_path / "previous", rate=10_000_000.0, seconds=1.0)
        _rate_document(tmp_path / "current", rate=5_000_000.0, seconds=1.0)
        code = compare_bench.main(
            [
                "--previous",
                str(tmp_path / "previous"),
                "--current",
                str(tmp_path / "current"),
            ]
        )
        assert code == 0  # advisory without --fail-threshold
        out = capsys.readouterr().out
        assert "::warning title=benchmark regression::" in out
        assert "ev/s" in out


class TestCiWorkflowWiring:
    def test_ci_runs_compare_unconditionally(self):
        """The workflow must not guard the comparison behind a dir check."""
        text = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )
        assert "skipping comparison" not in text
        assert "compare_bench.py" in text
