"""Tests for the case-study properties and the experiment harness."""

import pytest

from repro.experiments import (
    ExperimentScale,
    PROPERTY_NAMES,
    case_study_monitor,
    case_study_registry,
    format_table,
    property_formula,
    run_fig_5_1,
    run_fig_5_2_5_3,
    run_fig_5_9,
    run_monitoring_experiment,
    run_table_5_1,
)
from repro.ltl import atoms_of, parse


SMALL_SCALE = ExperimentScale(
    process_counts=(2, 3),
    events_per_process=4,
    replications=1,
    max_views_per_state=2,
)


class TestPropertyFormulas:
    @pytest.mark.parametrize("name", PROPERTY_NAMES)
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_formulas_parse_and_use_only_grid_atoms(self, name, n):
        formula = parse(property_formula(name, n))
        registry = case_study_registry(n)
        for atom in atoms_of(formula):
            assert atom in registry

    def test_a_and_c_coincide_for_small_systems(self):
        assert property_formula("A", 2) == property_formula("C", 2)
        assert property_formula("A", 3) == property_formula("C", 3)
        assert property_formula("A", 4) != property_formula("C", 4)

    def test_b_mentions_only_p_variables(self):
        formula = parse(property_formula("B", 4))
        assert all(atom.endswith(".p") for atom in atoms_of(formula))

    def test_e_mentions_all_variables(self):
        formula = parse(property_formula("E", 3))
        assert len(atoms_of(formula)) == 6

    def test_unknown_property_rejected(self):
        with pytest.raises(ValueError):
            property_formula("Z", 3)

    def test_single_process_rejected(self):
        with pytest.raises(ValueError):
            property_formula("A", 1)


class TestCaseStudyMonitors:
    @pytest.mark.parametrize("name", ["A", "B", "D", "E"])
    def test_paper_style_and_minimal_monitors_agree_on_verdict_domain(self, name):
        paper = case_study_monitor(name, 2)
        minimal = case_study_monitor(name, 2, paper_style=False)
        assert {paper.verdict(s) for s in paper.states} == {
            minimal.verdict(s) for s in minimal.states
        }

    def test_monitors_are_cached(self):
        assert case_study_monitor("A", 2) is case_study_monitor("A", 2)

    def test_table_5_1_exact_rows(self):
        rows = {
            (r["property"], r["processes"]): (r["total"], r["outgoing"], r["self_loops"])
            for r in run_table_5_1(process_counts=(2, 3))
        }
        assert rows[("A", 2)] == (7, 4, 3)
        assert rows[("D", 2)] == (15, 11, 4)
        assert rows[("E", 3)] == (8, 1, 7)
        assert rows[("C", 3)] == (11, 7, 4)

    def test_fig_5_1_series_shapes(self):
        series = run_fig_5_1(process_counts=(2, 3))
        assert set(series) == {"all_transitions", "outgoing_transitions"}
        assert series["outgoing_transitions"]["B"] == [1, 1]

    def test_fig_5_2_5_3_descriptions(self):
        descriptions = run_fig_5_2_5_3(2)
        assert set(descriptions) == {"A", "B", "D", "E", "F"}
        assert "verdict" in descriptions["A"]


class TestHarness:
    def test_monitoring_experiment_returns_metrics(self):
        row = run_monitoring_experiment("B", 2, SMALL_SCALE)
        assert row["property"] == "B"
        assert row["processes"] == 2
        assert row["events"] > 0
        assert row["messages"] >= 0
        assert row["global_views"] >= 2

    def test_simple_property_cheaper_than_complex(self):
        # E has a single outgoing transition, F the richest automaton of the
        # case study; even at this tiny scale E needs far fewer messages.
        simple = run_monitoring_experiment("E", 3, SMALL_SCALE)
        complex_ = run_monitoring_experiment("F", 3, SMALL_SCALE)
        assert simple["messages"] <= complex_["messages"]

    def test_fig_5_9_no_comm_reduces_events(self):
        rows = run_fig_5_9(
            comm_mus=(3.0, None), num_processes=3, property_name="C", scale=SMALL_SCALE
        )
        assert rows[0]["comm_mu"] == 3.0
        assert rows[1]["comm_mu"] == "no-comm"
        assert rows[1]["events"] < rows[0]["events"]

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
