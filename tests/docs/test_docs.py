"""Documentation gates: generated catalogue sync, links, docstring ratchet."""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import docgen, scenario_names

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"
SCENARIOS_DOC = DOCS / "scenarios.md"
FAULTS_DOC = DOCS / "faults.md"
API_DOC = DOCS / "api.md"

#: packages/modules held to the "every public API has a docstring" ratchet
#: (mirrored by the ruff D100–D104 configuration in pyproject.toml)
RATCHETED_PATHS = [
    REPO_ROOT / "src" / "repro" / "scenarios",
    REPO_ROOT / "src" / "repro" / "runtime",
    REPO_ROOT / "src" / "repro" / "faults",
    REPO_ROOT / "src" / "repro" / "core",
    REPO_ROOT / "src" / "repro" / "coordination",
    REPO_ROOT / "src" / "repro" / "distributed",
    REPO_ROOT / "src" / "repro" / "slicing",
    REPO_ROOT / "src" / "repro" / "fuzz",
    REPO_ROOT / "src" / "repro" / "fleet",
    REPO_ROOT / "src" / "repro" / "experiments" / "engine.py",
    REPO_ROOT / "src" / "repro" / "cluster",
    REPO_ROOT / "src" / "repro" / "api.py",
]


class TestScenariosDoc:
    def test_doc_exists_with_markers(self):
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        assert docgen.BEGIN_MARKER in text
        assert docgen.END_MARKER in text

    def test_scenarios_doc_matches_registry(self):
        """The generated section must equal a fresh rendering — no drift."""
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        begin = text.index(docgen.BEGIN_MARKER)
        end = text.index(docgen.END_MARKER) + len(docgen.END_MARKER)
        assert text[begin:end] == docgen.render_catalogue(), (
            "docs/scenarios.md is out of date; regenerate it with "
            "`PYTHONPATH=src python -m repro.scenarios.docgen docs/scenarios.md`"
        )

    def test_every_registered_scenario_documented(self):
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        for name in scenario_names():
            assert f"### `{name}`" in text

    def test_docgen_cli_roundtrip(self, tmp_path):
        copy = tmp_path / "scenarios.md"
        copy.write_text(
            "# header\n\n"
            f"{docgen.BEGIN_MARKER}\nstale content\n{docgen.END_MARKER}\n"
            "tail\n",
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.scenarios.docgen", str(copy)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        updated = copy.read_text(encoding="utf-8")
        assert "stale content" not in updated
        assert updated.startswith("# header")
        assert updated.endswith("tail\n")
        assert docgen.render_catalogue() in updated

    def test_docgen_rejects_file_without_markers(self, tmp_path):
        plain = tmp_path / "plain.md"
        plain.write_text("no markers here\n", encoding="utf-8")
        assert docgen.main([str(plain)]) == 1


class TestFaultsDoc:
    def test_doc_exists_with_markers(self):
        text = FAULTS_DOC.read_text(encoding="utf-8")
        assert docgen.FAULTS_BEGIN_MARKER in text
        assert docgen.FAULTS_END_MARKER in text

    def test_faults_doc_matches_registry(self):
        """The generated fault catalogue must equal a fresh rendering."""
        text = FAULTS_DOC.read_text(encoding="utf-8")
        begin = text.index(docgen.FAULTS_BEGIN_MARKER)
        end = text.index(docgen.FAULTS_END_MARKER) + len(docgen.FAULTS_END_MARKER)
        assert text[begin:end] == docgen.render_fault_catalogue(), (
            "docs/faults.md is out of date; regenerate it with "
            "`PYTHONPATH=src python -m repro.scenarios.docgen docs/faults.md`"
        )

    def test_every_fault_scenario_documented(self):
        from repro.scenarios import list_scenarios

        text = FAULTS_DOC.read_text(encoding="utf-8")
        fault_scenarios = [s for s in list_scenarios() if s.faults is not None]
        assert len(fault_scenarios) >= 4
        for scenario in fault_scenarios:
            assert f"### `{scenario.name}`" in text

    def test_docgen_refreshes_fault_markers(self, tmp_path):
        copy = tmp_path / "faults.md"
        copy.write_text(
            "# header\n\n"
            f"{docgen.FAULTS_BEGIN_MARKER}\nstale content\n{docgen.FAULTS_END_MARKER}\n",
            encoding="utf-8",
        )
        assert docgen.main([str(copy)]) == 0
        updated = copy.read_text(encoding="utf-8")
        assert "stale content" not in updated
        assert docgen.render_fault_catalogue() in updated


class TestAdversarialDoc:
    def test_doc_exists_with_markers(self):
        text = FAULTS_DOC.read_text(encoding="utf-8")
        assert docgen.ADVERSARIAL_BEGIN_MARKER in text
        assert docgen.ADVERSARIAL_END_MARKER in text

    def test_adversarial_catalogue_matches_registry(self):
        """The generated adversarial catalogue must equal a fresh rendering."""
        text = FAULTS_DOC.read_text(encoding="utf-8")
        begin = text.index(docgen.ADVERSARIAL_BEGIN_MARKER)
        end = text.index(docgen.ADVERSARIAL_END_MARKER) + len(
            docgen.ADVERSARIAL_END_MARKER
        )
        assert text[begin:end] == docgen.render_adversarial_catalogue(), (
            "docs/faults.md is out of date; regenerate it with "
            "`PYTHONPATH=src python -m repro.scenarios.docgen docs/faults.md`"
        )

    def test_every_adversarial_scenario_documented(self):
        from repro.scenarios import list_scenarios

        text = FAULTS_DOC.read_text(encoding="utf-8")
        adversarial = [s for s in list_scenarios() if "adversarial" in s.tags]
        assert len(adversarial) >= 3
        for scenario in adversarial:
            assert f"### `{scenario.name}`" in text

    def test_hand_written_sections_cover_the_attack_surface(self):
        text = FAULTS_DOC.read_text(encoding="utf-8")
        for needle in (
            "## Adversarial (Byzantine) behaviours",
            "## Clock skew and the soundness boundary",
            "## Property fuzzing (`repro.fuzz`)",
            "fault_byz_corrupted",
            "skew@<mode>~<rate>~<magnitude>~<seed>",
        ):
            assert needle in text, needle


class TestTopologyDoc:
    def test_doc_exists_with_markers(self):
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        assert docgen.TOPOLOGY_BEGIN_MARKER in text
        assert docgen.TOPOLOGY_END_MARKER in text

    def test_topology_catalogue_matches_registry(self):
        """The generated topology catalogue must equal a fresh rendering."""
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        begin = text.index(docgen.TOPOLOGY_BEGIN_MARKER)
        end = text.index(docgen.TOPOLOGY_END_MARKER) + len(
            docgen.TOPOLOGY_END_MARKER
        )
        assert text[begin:end] == docgen.render_topology_catalogue(), (
            "docs/scenarios.md is out of date; regenerate it with "
            "`PYTHONPATH=src python -m repro.scenarios.docgen docs/scenarios.md`"
        )

    def test_every_registered_topology_documented(self):
        from repro.coordination import TOPOLOGIES

        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        for name in TOPOLOGIES:
            assert f"`{name}`" in text

    def test_every_scenario_entry_names_its_topology(self):
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        assert text.count("**Topology:**") >= len(scenario_names())

    def test_docgen_refreshes_topology_markers(self, tmp_path):
        copy = tmp_path / "scenarios.md"
        copy.write_text(
            "# header\n\n"
            f"{docgen.TOPOLOGY_BEGIN_MARKER}\nstale\n{docgen.TOPOLOGY_END_MARKER}\n",
            encoding="utf-8",
        )
        assert docgen.main([str(copy)]) == 0
        updated = copy.read_text(encoding="utf-8")
        assert "stale" not in updated
        assert docgen.render_topology_catalogue() in updated


class TestApiDoc:
    def test_doc_exists_with_markers(self):
        text = API_DOC.read_text(encoding="utf-8")
        assert docgen.API_BEGIN_MARKER in text
        assert docgen.API_END_MARKER in text

    def test_api_doc_matches_public_surface(self):
        """The generated reference must equal a fresh rendering — no drift."""
        text = API_DOC.read_text(encoding="utf-8")
        begin = text.index(docgen.API_BEGIN_MARKER)
        end = text.index(docgen.API_END_MARKER) + len(docgen.API_END_MARKER)
        assert text[begin:end] == docgen.render_api_reference(), (
            "docs/api.md is out of date; regenerate it with "
            "`PYTHONPATH=src python -m repro.scenarios.docgen docs/api.md`"
        )

    def test_every_public_name_documented(self):
        from repro import api

        text = API_DOC.read_text(encoding="utf-8")
        for name in api.__all__:
            assert f"| `{name}` |" in text

    def test_docgen_refreshes_api_markers(self, tmp_path):
        copy = tmp_path / "api.md"
        copy.write_text(
            "# header\n\n"
            f"{docgen.API_BEGIN_MARKER}\nstale\n{docgen.API_END_MARKER}\n",
            encoding="utf-8",
        )
        assert docgen.main([str(copy)]) == 0
        updated = copy.read_text(encoding="utf-8")
        assert "stale" not in updated
        assert docgen.render_api_reference() in updated


class TestFleetDoc:
    FLEET_DOC = DOCS / "fleet.md"

    def test_doc_exists_with_markers(self):
        text = self.FLEET_DOC.read_text(encoding="utf-8")
        assert docgen.FLEET_BEGIN_MARKER in text
        assert docgen.FLEET_END_MARKER in text

    def test_fleet_catalogue_matches_registries(self):
        """The generated fleet catalogue must equal a fresh rendering."""
        text = self.FLEET_DOC.read_text(encoding="utf-8")
        begin = text.index(docgen.FLEET_BEGIN_MARKER)
        end = text.index(docgen.FLEET_END_MARKER) + len(docgen.FLEET_END_MARKER)
        assert text[begin:end] == docgen.render_fleet_catalogue(), (
            "docs/fleet.md is out of date; regenerate it with "
            "`PYTHONPATH=src python -m repro.scenarios.docgen docs/fleet.md`"
        )

    def test_every_source_sink_and_policy_documented(self):
        from repro.fleet.config import BACKPRESSURE_POLICIES
        from repro.fleet.sinks import SINK_KINDS
        from repro.fleet.sources import SOURCE_KINDS

        text = self.FLEET_DOC.read_text(encoding="utf-8")
        for name in (*SOURCE_KINDS, *SINK_KINDS, *BACKPRESSURE_POLICIES):
            assert f"`{name}`" in text, name

    def test_hand_written_sections_cover_the_operator_surface(self):
        text = self.FLEET_DOC.read_text(encoding="utf-8")
        for needle in (
            "## Tenants and admission",
            "## The correctness anchor",
            "## Saturation metrics and BENCH tracking",
            "## Capacity planning: a worked example",
            "fleet_events_per_sec",
            "fleet_verdict_latency_p99",
        ):
            assert needle in text, needle

    def test_docgen_refreshes_fleet_markers(self, tmp_path):
        copy = tmp_path / "fleet.md"
        copy.write_text(
            "# header\n\n"
            f"{docgen.FLEET_BEGIN_MARKER}\nstale\n{docgen.FLEET_END_MARKER}\n",
            encoding="utf-8",
        )
        assert docgen.main([str(copy)]) == 0
        updated = copy.read_text(encoding="utf-8")
        assert "stale" not in updated
        assert docgen.render_fleet_catalogue() in updated


class TestResultsDoc:
    RESULTS_DOC = DOCS / "results.md"

    def test_doc_exists_and_is_marked_generated(self):
        text = self.RESULTS_DOC.read_text(encoding="utf-8")
        assert text.startswith("<!-- GENERATED by tools/gen_results_report.py")

    def test_results_doc_matches_the_committed_artifact(self):
        """docs/results.md must equal a fresh rendering of BENCH_results.json."""
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "gen_results_report.py"),
                "--check",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, (
            result.stdout
            + result.stderr
            + "\nregenerate with `python tools/gen_results_report.py`"
        )

    def test_every_artefact_module_mapped_to_its_figure(self):
        text = self.RESULTS_DOC.read_text(encoding="utf-8")
        benchmarks = REPO_ROOT / "benchmarks"
        modules = sorted(benchmarks.glob("test_fig_*.py")) + sorted(
            benchmarks.glob("test_table_*.py")
        )
        assert len(modules) >= 6
        for path in modules:
            assert f"`benchmarks/{path.name}`" in text, path.name


class TestDocsLinks:
    def test_all_relative_links_resolve(self):
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_docs_links.py"),
                str(REPO_ROOT / "README.md"),
                str(DOCS),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_required_documents_exist(self):
        for name in (
            "architecture.md",
            "scenarios.md",
            "benchmarks.md",
            "faults.md",
            "api.md",
            "fleet.md",
            "results.md",
        ):
            assert (DOCS / name).exists(), f"docs/{name} is missing"

    def test_readme_links_architecture_doc(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in readme


def _ratcheted_files():
    files = []
    for path in RATCHETED_PATHS:
        if path.is_dir():
            files.extend(sorted(path.glob("*.py")))
        else:
            files.append(path)
    return files


@pytest.mark.parametrize(
    "path", _ratcheted_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_docstring_ratchet(path):
    """Every public module/class/function in ratcheted paths is documented.

    This is the locally-runnable mirror of the ruff ``D100``–``D104``
    configuration in ``pyproject.toml``.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("module")

    def walk(node, qualname):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                public = not name.startswith("_")
                if public and ast.get_docstring(child) is None:
                    missing.append(f"{qualname}{name}")
                if isinstance(child, ast.ClassDef):
                    walk(child, f"{qualname}{name}.")

    walk(tree, "")
    assert not missing, f"{path}: missing docstrings for {missing}"


#: paths held to the mypy ``disallow_untyped_defs`` /
#: ``disallow_incomplete_defs`` bar in pyproject.toml; the AST check below
#: mirrors it on hosts without mypy installed
TYPED_DEF_PATHS = [
    REPO_ROOT / "src" / "repro" / "runtime",
    REPO_ROOT / "src" / "repro" / "ltl" / "compiled.py",
]


def _typed_def_files():
    files = []
    for path in TYPED_DEF_PATHS:
        if path.is_dir():
            files.extend(sorted(path.glob("*.py")))
        else:
            files.append(path)
    return files


@pytest.mark.parametrize(
    "path", _typed_def_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_typed_defs_ratchet(path):
    """Every def in typed-ratchet paths carries complete annotations.

    This is the locally-runnable mirror of the strict
    ``disallow_untyped_defs`` / ``disallow_incomplete_defs`` mypy overrides
    in ``pyproject.toml`` (``repro.runtime.*`` and the compiled LTL kernel).
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    incomplete = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        names = args.posonlyargs + args.args + args.kwonlyargs
        missing = [
            a.arg
            for a in names
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            incomplete.append(f"{node.name}:{node.lineno} ({', '.join(missing)})")
    assert not incomplete, f"{path}: incomplete annotations on {incomplete}"
