"""The documentation tooling itself: link checker, docgen, results report.

``tools/check_docs_links.py`` and the docgen marker machinery are the gates
every doc in this repo passes through; a bug in either silently un-gates
the documentation.  These tests pin their contracts: broken targets and
missing anchors fail with exit 1, code fences are skipped, unknown-marker
files are rejected, stale generated blocks are refreshed, multi-marker
files refresh every section, and the results report round-trips through
its ``--check`` mode.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import docgen

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs_links = _load_tool("check_docs_links")
gen_results_report = _load_tool("gen_results_report")


class TestLinkChecker:
    def test_valid_relative_link_passes(self, tmp_path):
        (tmp_path / "target.md").write_text("# Target\n")
        (tmp_path / "doc.md").write_text("[see](target.md)\n")
        assert check_docs_links.main([str(tmp_path)]) == 0

    def test_broken_target_fails(self, tmp_path, capsys):
        (tmp_path / "doc.md").write_text("[see](missing.md)\n")
        assert check_docs_links.main([str(tmp_path)]) == 1
        assert "broken link target 'missing.md'" in capsys.readouterr().out

    def test_anchor_must_match_a_heading(self, tmp_path, capsys):
        (tmp_path / "target.md").write_text("# Real Heading\n")
        (tmp_path / "doc.md").write_text(
            "[ok](target.md#real-heading)\n[bad](target.md#no-such)\n"
        )
        assert check_docs_links.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "missing anchor 'target.md#no-such'" in out
        assert "real-heading" not in out  # the valid anchor is not reported

    def test_same_file_anchor(self, tmp_path):
        (tmp_path / "doc.md").write_text("# My Section\n\n[jump](#my-section)\n")
        assert check_docs_links.main([str(tmp_path)]) == 0

    def test_links_inside_code_fences_are_skipped(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "```md\n[not a real link](missing.md)\n```\n"
        )
        assert check_docs_links.main([str(tmp_path)]) == 0

    def test_external_targets_are_skipped(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "[x](https://example.com/404) [y](mailto:a@b.c)\n"
        )
        assert check_docs_links.main([str(tmp_path)]) == 0

    def test_no_arguments_is_a_usage_error(self):
        assert check_docs_links.main([]) == 2

    def test_slugify_matches_github_style(self):
        assert check_docs_links.slugify("The `fleet` CLI!") == "the-fleet-cli"
        assert check_docs_links.slugify("Sharding & amortization") == (
            "sharding--amortization"
        )


#: every registered docgen section: (begin marker, end marker, render fn)
_SECTIONS = [
    (docgen.BEGIN_MARKER, docgen.END_MARKER, docgen.render_catalogue),
    (
        docgen.FAULTS_BEGIN_MARKER,
        docgen.FAULTS_END_MARKER,
        docgen.render_fault_catalogue,
    ),
    (
        docgen.FLEET_BEGIN_MARKER,
        docgen.FLEET_END_MARKER,
        docgen.render_fleet_catalogue,
    ),
]


class TestDocgenMachinery:
    def test_file_without_any_known_marker_fails(self, tmp_path, capsys):
        plain = tmp_path / "plain.md"
        plain.write_text("# doc\n\n<!-- BEGIN SOMETHING ELSE -->\n")
        assert docgen.main([str(plain)]) == 1
        assert "no generated-section markers" in capsys.readouterr().err

    def test_stale_block_is_refreshed_in_place(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "before\n\n"
            f"{docgen.FLEET_BEGIN_MARKER}\nSTALE\n{docgen.FLEET_END_MARKER}\n\n"
            "after\n"
        )
        assert docgen.main([str(doc)]) == 0
        text = doc.read_text()
        assert "STALE" not in text
        assert text.startswith("before\n")
        assert text.endswith("after\n")
        assert docgen.render_fleet_catalogue() in text

    def test_multi_marker_file_refreshes_every_section(self, tmp_path):
        doc = tmp_path / "doc.md"
        body = "\n\n".join(
            f"{begin}\nstale {i}\n{end}"
            for i, (begin, end, _) in enumerate(_SECTIONS)
        )
        doc.write_text(f"# all catalogues\n\n{body}\n")
        assert docgen.main([str(doc)]) == 0
        text = doc.read_text()
        for i, (_, _, render) in enumerate(_SECTIONS):
            assert f"stale {i}" not in text
            assert render() in text

    def test_refresh_is_idempotent(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            f"{docgen.FLEET_BEGIN_MARKER}\nx\n{docgen.FLEET_END_MARKER}\n"
        )
        assert docgen.main([str(doc)]) == 0
        first = doc.read_text()
        assert docgen.main([str(doc)]) == 0
        assert doc.read_text() == first


class TestResultsReport:
    def _document(self):
        return json.loads(
            (REPO_ROOT / "benchmarks" / "BENCH_results.json").read_text()
        )

    def test_artefact_naming_convention(self):
        assert gen_results_report.artefact_of("test_fig_5_1_series") == (
            "Figure 5.1",
            ["5.1"],
        )
        assert gen_results_report.artefact_of("test_fig_5_2_5_3_automata") == (
            "Figures 5.2–5.3",
            ["5.2", "5.3"],
        )
        assert gen_results_report.artefact_of("test_table_5_1_transitions") == (
            "Table 5.1",
            ["5.1"],
        )
        with pytest.raises(ValueError, match="naming"):
            gen_results_report.artefact_of("test_kernel_hotpaths")

    def test_every_artefact_module_is_reported(self):
        rendered = gen_results_report.render_report(self._document())
        for path in sorted(REPO_ROOT.glob("benchmarks/test_fig_*.py")) + sorted(
            REPO_ROOT.glob("benchmarks/test_table_*.py")
        ):
            assert f"`benchmarks/{path.name}`" in rendered

    def test_fleet_metrics_are_reported(self):
        rendered = gen_results_report.render_report(self._document())
        assert "`fleet_events_per_sec`" in rendered

    def test_check_mode_detects_drift(self, tmp_path, capsys):
        report = tmp_path / "results.md"
        report.write_text("stale report\n")
        assert (
            gen_results_report.main(["--check", str(report)]) == 1
        )
        assert "out of date" in capsys.readouterr().err

    def test_write_then_check_round_trips(self, tmp_path):
        report = tmp_path / "results.md"
        assert gen_results_report.main([str(report)]) == 0
        assert gen_results_report.main(["--check", str(report)]) == 0

    def test_committed_report_is_in_sync(self):
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "gen_results_report.py"),
                "--check",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
