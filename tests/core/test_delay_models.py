"""Tests for the fault-oriented delay models: asymmetric links, partitions."""

import pytest

from repro.core import run_decentralized
from repro.core.delays import AsymmetricLatencyMatrix, MultiPartitionDelay
from repro.experiments.properties import case_study_registry
from repro.ltl import build_monitor
from repro.api import run_streaming
from repro.scenarios import AsymmetricNetwork, MultiPartitionNetwork, get_scenario
from repro.sim import Simulator, random_computation, simulate_monitored_run


class TestAsymmetricLatencyMatrix:
    def test_direction_matters(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.0, skew=1.5)
        forward = matrix.latency_for(0, 1)
        backward = matrix.latency_for(1, 0)
        assert forward != backward
        assert matrix.delivery_time(0.0, 0, 1) == pytest.approx(forward)
        assert matrix.delivery_time(0.0, 1, 0) == pytest.approx(backward)

    def test_self_loop_has_base_latency(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.0, skew=2.0)
        assert matrix.latency_for(3, 3) == pytest.approx(0.1)

    def test_explicit_pair_overrides_ring_formula(self):
        matrix = AsymmetricLatencyMatrix(
            base_latency=0.1, jitter=0.0, pair_latencies={(0, 1): 0.7}
        )
        assert matrix.latency_for(0, 1) == pytest.approx(0.7)
        # the reverse direction still follows the formula
        assert matrix.latency_for(1, 0) != pytest.approx(0.7)

    def test_zero_skew_degenerates_to_symmetric(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.0, skew=0.0)
        assert matrix.latency_for(0, 1) == matrix.latency_for(1, 0) == pytest.approx(0.1)

    def test_jitter_varies_around_pair_base(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.01, seed=3)
        samples = {matrix.delivery_time(0.0, 0, 1) for _ in range(10)}
        assert len(samples) > 1
        assert all(value >= 0.0 for value in samples)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(base_latency=-0.1)
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(skew=-1.0)
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(ring=1)
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(pair_latencies={(0, 1): -0.5})


class TestMultiPartitionDelay:
    SCHEDULE = ((1.0, 4.0, ((0, 1),)), (6.0, 9.0, ((0, 2), (1,))))

    def test_message_inside_phase_held_until_heal(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        # at t=2.0: phase one separates {0,1} from the rest group {2, ...}
        assert delay.delivery_time(2.0, 0, 2) == pytest.approx(4.0 + 0.1)
        assert delay.held_messages == 1

    def test_same_group_messages_pass_through_phase(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        assert delay.delivery_time(2.0, 0, 1) == pytest.approx(2.1)
        assert delay.held_messages == 0

    def test_later_phase_regroups_processes(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        # at t=7.0: phase two groups 0 with 2, but separates 1
        assert delay.delivery_time(7.0, 0, 2) == pytest.approx(7.1)
        assert delay.delivery_time(7.0, 0, 1) == pytest.approx(9.1)

    def test_heal_can_land_in_a_later_phase_and_be_held_again(self):
        schedule = ((1.0, 4.0, ((0,),)), (4.05, 9.0, ((0,),)))
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=schedule)
        # held to 4.0, re-arrives at 4.1 inside phase two, held to 9.0
        assert delay.delivery_time(2.0, 0, 1) == pytest.approx(9.1)
        assert delay.held_messages == 2

    def test_messages_outside_all_phases_unaffected(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        assert delay.delivery_time(10.0, 0, 1) == pytest.approx(10.1)
        assert delay.extra_stats() == {"held_messages": 0.0}

    def test_rest_group_members_stay_connected(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        # 2 and 3 are both unnamed by phase one: same implicit rest group
        assert delay.delivery_time(2.0, 2, 3) == pytest.approx(2.1)

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ValueError, match="window"):
            MultiPartitionDelay(schedule=((3.0, 2.0, ((0,),)),))
        with pytest.raises(ValueError, match="overlap"):
            MultiPartitionDelay(
                schedule=((1.0, 5.0, ((0,),)), (4.0, 8.0, ((1,),)))
            )
        with pytest.raises(ValueError, match="non-empty"):
            MultiPartitionDelay(schedule=((1.0, 2.0, ((),)),))
        with pytest.raises(ValueError, match="disjoint"):
            MultiPartitionDelay(schedule=((1.0, 2.0, ((0, 1), (1, 2))),))

    def test_phases_sorted_by_start(self):
        delay = MultiPartitionDelay(
            jitter=0.0,
            schedule=((6.0, 9.0, ((0,),)), (1.0, 4.0, ((1,),))),
        )
        assert [phase[0] for phase in delay.schedule] == [1.0, 6.0]


class TestScenarioBindings:
    @pytest.mark.parametrize(
        "model",
        [AsymmetricNetwork(), MultiPartitionNetwork()],
        ids=["asymmetric", "multi-partition"],
    )
    def test_networks_build_for_both_backends(self, model):
        network = model.build(Simulator(), seed=1)
        assert network is not None
        assert model.delay_model(seed=1) is not None
        assert "kind" in model.describe()

    @pytest.mark.parametrize("name", ["asymmetric-mesh", "multi-partition"])
    @pytest.mark.parametrize("seed", [3, 2015])
    def test_new_network_scenarios_preserve_verdicts_on_both_backends(
        self, name, seed
    ):
        # both conditions deliver every message eventually, so conclusive
        # verdicts must match the loopback runner on either backend
        scenario = get_scenario(name)
        registry = case_study_registry(3)
        automaton = build_monitor("F(P0.p & P1.p)", atoms=registry.names)
        computation = random_computation(3, 12, seed=seed)
        loopback = run_decentralized(computation, automaton, registry)
        simulated = simulate_monitored_run(
            computation, automaton, registry, seed=seed, network=scenario.network
        )
        streamed = run_streaming(
            computation, automaton, registry, delay=scenario.network.delay_model(seed)
        )
        assert simulated.declared_verdicts == loopback.declared_verdicts
        assert streamed.declared_verdicts == loopback.declared_verdicts
