"""Tests for the fault-oriented delay models: asymmetric links, partitions."""

import pytest

from repro.core import run_decentralized
from repro.core.delays import AsymmetricLatencyMatrix, MultiPartitionDelay
from repro.experiments.properties import case_study_registry
from repro.ltl import build_monitor
from repro.api import run_streaming
from repro.scenarios import AsymmetricNetwork, MultiPartitionNetwork, get_scenario
from repro.sim import Simulator, random_computation, simulate_monitored_run


class TestAsymmetricLatencyMatrix:
    def test_direction_matters(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.0, skew=1.5)
        forward = matrix.latency_for(0, 1)
        backward = matrix.latency_for(1, 0)
        assert forward != backward
        assert matrix.delivery_time(0.0, 0, 1) == pytest.approx(forward)
        assert matrix.delivery_time(0.0, 1, 0) == pytest.approx(backward)

    def test_self_loop_has_base_latency(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.0, skew=2.0)
        assert matrix.latency_for(3, 3) == pytest.approx(0.1)

    def test_explicit_pair_overrides_ring_formula(self):
        matrix = AsymmetricLatencyMatrix(
            base_latency=0.1, jitter=0.0, pair_latencies={(0, 1): 0.7}
        )
        assert matrix.latency_for(0, 1) == pytest.approx(0.7)
        # the reverse direction still follows the formula
        assert matrix.latency_for(1, 0) != pytest.approx(0.7)

    def test_zero_skew_degenerates_to_symmetric(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.0, skew=0.0)
        assert matrix.latency_for(0, 1) == matrix.latency_for(1, 0) == pytest.approx(0.1)

    def test_jitter_varies_around_pair_base(self):
        matrix = AsymmetricLatencyMatrix(base_latency=0.1, jitter=0.01, seed=3)
        samples = {matrix.delivery_time(0.0, 0, 1) for _ in range(10)}
        assert len(samples) > 1
        assert all(value >= 0.0 for value in samples)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(base_latency=-0.1)
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(skew=-1.0)
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(ring=1)
        with pytest.raises(ValueError):
            AsymmetricLatencyMatrix(pair_latencies={(0, 1): -0.5})


class TestMultiPartitionDelay:
    SCHEDULE = ((1.0, 4.0, ((0, 1),)), (6.0, 9.0, ((0, 2), (1,))))

    def test_message_inside_phase_held_until_heal(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        # at t=2.0: phase one separates {0,1} from the rest group {2, ...}
        assert delay.delivery_time(2.0, 0, 2) == pytest.approx(4.0 + 0.1)
        assert delay.held_messages == 1

    def test_same_group_messages_pass_through_phase(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        assert delay.delivery_time(2.0, 0, 1) == pytest.approx(2.1)
        assert delay.held_messages == 0

    def test_later_phase_regroups_processes(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        # at t=7.0: phase two groups 0 with 2, but separates 1
        assert delay.delivery_time(7.0, 0, 2) == pytest.approx(7.1)
        assert delay.delivery_time(7.0, 0, 1) == pytest.approx(9.1)

    def test_heal_can_land_in_a_later_phase_and_be_held_again(self):
        schedule = ((1.0, 4.0, ((0,),)), (4.05, 9.0, ((0,),)))
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=schedule)
        # held to 4.0, re-arrives at 4.1 inside phase two, held to 9.0
        assert delay.delivery_time(2.0, 0, 1) == pytest.approx(9.1)
        assert delay.held_messages == 2

    def test_messages_outside_all_phases_unaffected(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        assert delay.delivery_time(10.0, 0, 1) == pytest.approx(10.1)
        assert delay.extra_stats() == {"held_messages": 0.0}

    def test_rest_group_members_stay_connected(self):
        delay = MultiPartitionDelay(latency=0.1, jitter=0.0, schedule=self.SCHEDULE)
        # 2 and 3 are both unnamed by phase one: same implicit rest group
        assert delay.delivery_time(2.0, 2, 3) == pytest.approx(2.1)

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ValueError, match="window"):
            MultiPartitionDelay(schedule=((3.0, 2.0, ((0,),)),))
        with pytest.raises(ValueError, match="overlap"):
            MultiPartitionDelay(
                schedule=((1.0, 5.0, ((0,),)), (4.0, 8.0, ((1,),)))
            )
        with pytest.raises(ValueError, match="non-empty"):
            MultiPartitionDelay(schedule=((1.0, 2.0, ((),)),))
        with pytest.raises(ValueError, match="disjoint"):
            MultiPartitionDelay(schedule=((1.0, 2.0, ((0, 1), (1, 2))),))

    def test_phases_sorted_by_start(self):
        delay = MultiPartitionDelay(
            jitter=0.0,
            schedule=((6.0, 9.0, ((0,),)), (1.0, 4.0, ((1,),))),
        )
        assert [phase[0] for phase in delay.schedule] == [1.0, 6.0]


class TestDeriveSchedule:
    SCHEDULE = TestMultiPartitionDelay.SCHEDULE

    def test_deterministic_per_seed(self):
        first = MultiPartitionDelay.derive_schedule(self.SCHEDULE, seed=7)
        second = MultiPartitionDelay.derive_schedule(self.SCHEDULE, seed=7)
        assert first == second

    def test_distinct_across_seeds(self):
        derived = {
            MultiPartitionDelay.derive_schedule(self.SCHEDULE, seed=s)
            for s in range(100)
        }
        assert len(derived) == 100

    def test_durations_groups_and_order_preserved(self):
        for seed in range(50):
            derived = MultiPartitionDelay.derive_schedule(self.SCHEDULE, seed=seed)
            assert len(derived) == len(self.SCHEDULE)
            for (s0, e0, g0), (s1, e1, g1) in zip(self.SCHEDULE, derived):
                assert e1 - s1 == pytest.approx(e0 - s0)
                assert g1 == g0
                assert s1 >= 0.0
            starts = [phase[0] for phase in derived]
            assert starts == sorted(starts)

    def test_derived_schedules_pass_constructor_validation(self):
        # shifted phases must never overlap — the constructor enforces it
        for seed in range(50):
            MultiPartitionDelay(
                jitter=0.0,
                schedule=MultiPartitionDelay.derive_schedule(self.SCHEDULE, seed=seed),
            )

    def test_shift_bounded_by_jitter_fraction(self):
        for seed in range(50):
            derived = MultiPartitionDelay.derive_schedule(
                self.SCHEDULE, seed=seed, jitter=0.25
            )
            for (s0, e0, _), (s1, _, _) in zip(self.SCHEDULE, derived):
                assert abs(s1 - s0) <= 0.25 * (e0 - s0) + 1e-9

    def test_seed_none_and_zero_jitter_are_identity(self):
        assert MultiPartitionDelay.derive_schedule(self.SCHEDULE, None) == self.SCHEDULE
        assert (
            MultiPartitionDelay.derive_schedule(self.SCHEDULE, 5, jitter=0.0)
            == self.SCHEDULE
        )
        assert MultiPartitionDelay.derive_schedule((), 5) == ()

    def test_network_model_derives_per_seed_schedule(self):
        model = MultiPartitionNetwork()
        a = model.delay_model(seed=1).schedule
        b = model.delay_model(seed=2).schedule
        assert a != b
        assert a == MultiPartitionDelay.derive_schedule(
            model.schedule, 1, model.seed_phase_jitter
        )

    def test_zero_phase_jitter_pins_schedule(self):
        model = MultiPartitionNetwork(seed_phase_jitter=0.0)
        assert model.delay_model(seed=9).schedule == model.schedule

    def test_both_backends_share_derived_schedule(self):
        # build() wraps delay_model(), so sim and asyncio see one schedule
        model = MultiPartitionNetwork()
        network = model.build(Simulator(), seed=4)
        assert network.delay.schedule == model.delay_model(seed=4).schedule


class TestScenarioBindings:
    @pytest.mark.parametrize(
        "model",
        [AsymmetricNetwork(), MultiPartitionNetwork()],
        ids=["asymmetric", "multi-partition"],
    )
    def test_networks_build_for_both_backends(self, model):
        network = model.build(Simulator(), seed=1)
        assert network is not None
        assert model.delay_model(seed=1) is not None
        assert "kind" in model.describe()

    @pytest.mark.parametrize("name", ["asymmetric-mesh", "multi-partition"])
    @pytest.mark.parametrize("seed", [3, 2015])
    def test_new_network_scenarios_preserve_verdicts_on_both_backends(
        self, name, seed
    ):
        # both conditions deliver every message eventually, so conclusive
        # verdicts must match the loopback runner on either backend
        scenario = get_scenario(name)
        registry = case_study_registry(3)
        automaton = build_monitor("F(P0.p & P1.p)", atoms=registry.names)
        computation = random_computation(3, 12, seed=seed)
        loopback = run_decentralized(computation, automaton, registry)
        simulated = simulate_monitored_run(
            computation, automaton, registry, seed=seed, network=scenario.network
        )
        streamed = run_streaming(
            computation, automaton, registry, delay=scenario.network.delay_model(seed)
        )
        assert simulated.declared_verdicts == loopback.declared_verdicts
        assert streamed.declared_verdicts == loopback.declared_verdicts
