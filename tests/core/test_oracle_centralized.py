"""Tests for the lattice oracle and the centralized baseline."""

import pytest

from repro.core import CentralizedMonitor, LatticeOracle
from repro.distributed import running_example, running_example_registry
from repro.ltl import PropositionRegistry, Verdict, build_monitor
from repro.sim import random_computation


@pytest.fixture(scope="module")
def example():
    return running_example()


@pytest.fixture(scope="module")
def registry():
    return running_example_registry()


@pytest.fixture(scope="module")
def psi(registry):
    # ψ = G((x1>=5) -> ((x2>=15) U (x1=10)))  (Fig. 2.3)
    return build_monitor("G({x1>=5} -> ({x2>=15} U {x1=10}))", atoms=registry.names)


class TestLatticeOracle:
    def test_chapter3_analysis_of_running_example(self, example, registry, psi):
        """Fig. 3.1: paths through <e1_1> evaluate to ⊥ while the path that
        delays x1>=5 until after x2>=15 stays inconclusive."""
        oracle = LatticeOracle(example, psi, registry)
        result = oracle.evaluate()
        assert result.verdicts == frozenset({Verdict.BOTTOM, Verdict.INCONCLUSIVE})
        assert result.num_paths == 15

    def test_reachable_states_cover_every_cut(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry)
        reachable = oracle.reachable_states()
        assert set(reachable) == set(oracle.lattice.cuts())
        assert all(states for states in reachable.values())

    def test_dp_matches_path_enumeration(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry)
        result = oracle.evaluate()
        assert result.verdicts == oracle.verdicts_by_path_enumeration()

    def test_dp_matches_enumeration_on_random_computations(self):
        for seed in range(8):
            computation = random_computation(2 + seed % 2, 6, seed=seed)
            registry = PropositionRegistry.boolean_grid(computation.num_processes)
            automaton = build_monitor("G(P0.p U P1.q)", atoms=registry.names)
            oracle = LatticeOracle(computation, automaton, registry)
            assert oracle.evaluate().verdicts == oracle.verdicts_by_path_enumeration()

    def test_verdict_of_single_path(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry)
        path = next(oracle.lattice.paths())
        assert oracle.verdict_of_path(path) in {Verdict.BOTTOM, Verdict.INCONCLUSIVE}

    def test_pivot_cuts_are_consistent_cuts(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry)
        result = oracle.evaluate()
        for cut in result.pivot_cuts:
            assert example.is_consistent_cut(cut)

    def test_conclusive_verdicts_property(self, example, registry, psi):
        result = LatticeOracle(example, psi, registry).evaluate()
        assert result.conclusive_verdicts == frozenset({Verdict.BOTTOM})

    def test_letters_are_cached(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry)
        first = oracle.letter_of((2, 2))
        second = oracle.letter_of((2, 2))
        assert first is second


class TestCentralizedMonitor:
    def test_matches_oracle_on_running_example(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry).evaluate()
        result = CentralizedMonitor.monitor_computation(example, psi, registry)
        assert result.verdicts == oracle.verdicts
        assert result.final_states == oracle.final_states

    def test_one_message_per_event(self, example, registry, psi):
        result = CentralizedMonitor.monitor_computation(example, psi, registry)
        assert result.messages == example.num_events

    def test_matches_oracle_on_random_computations(self):
        for seed in range(10):
            n = 2 + seed % 3
            computation = random_computation(n, 7, seed=seed)
            registry = PropositionRegistry.boolean_grid(n)
            automaton = build_monitor("F(P0.p & P1.p)", atoms=registry.names)
            oracle = LatticeOracle(computation, automaton, registry).evaluate()
            result = CentralizedMonitor.monitor_computation(
                computation, automaton, registry
            )
            assert result.verdicts == oracle.verdicts

    def test_tracked_cuts_grow_with_concurrency(self, example, registry, psi):
        result = CentralizedMonitor.monitor_computation(example, psi, registry)
        assert result.total_tracked_cuts == 17  # the full lattice of Fig 2.2b
        assert result.max_tracked_cuts >= result.total_tracked_cuts

    def test_declared_final_verdicts(self, example, registry, psi):
        monitor = CentralizedMonitor(
            example.num_processes,
            psi,
            registry,
            [registry.local_letter(i, example.initial_states[i]) for i in range(2)],
        )
        for event in sorted(example.all_events(), key=lambda e: e.timestamp):
            monitor.receive_event(event)
        assert Verdict.BOTTOM in monitor.declared
