"""Tests for the decentralized monitoring algorithm on hand-built computations."""

import pytest

from repro.core import (
    DecentralizedMonitor,
    LatticeOracle,
    LoopbackNetwork,
    run_decentralized,
)
from repro.distributed import (
    ComputationBuilder,
    running_example,
    running_example_registry,
    token_ring_example,
)
from repro.ltl import Proposition, PropositionRegistry, Verdict, build_monitor


@pytest.fixture(scope="module")
def example():
    return running_example()


@pytest.fixture(scope="module")
def registry():
    return running_example_registry()


@pytest.fixture(scope="module")
def psi(registry):
    return build_monitor("G({x1>=5} -> ({x2>=15} U {x1=10}))", atoms=registry.names)


class TestRunningExample:
    def test_verdict_set_matches_oracle(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry).evaluate()
        result = run_decentralized(example, psi, registry)
        assert result.declared_verdicts == oracle.conclusive_verdicts
        assert result.reported_verdicts == oracle.verdicts

    def test_violation_is_declared(self, example, registry, psi):
        result = run_decentralized(example, psi, registry)
        assert Verdict.BOTTOM in result.declared_verdicts

    def test_network_quiesces(self, example, registry, psi):
        result = run_decentralized(example, psi, registry)
        assert result.is_quiescent()

    def test_all_monitors_terminate_cleanly(self, example, registry, psi):
        result = run_decentralized(example, psi, registry)
        for monitor in result.monitors:
            assert monitor.is_quiescent
            assert not monitor.waiting_tokens

    def test_messages_are_exchanged(self, example, registry, psi):
        result = run_decentralized(example, psi, registry)
        assert result.total_messages > 0
        assert result.total_token_messages > 0

    def test_property_accepts_formula_string(self, example, registry):
        result = run_decentralized(
            example, "G({x1>=5} -> ({x2>=15} U {x1=10}))", registry
        )
        assert Verdict.BOTTOM in result.declared_verdicts

    def test_summary_keys(self, example, registry, psi):
        summary = run_decentralized(example, psi, registry).summary()
        assert {"verdicts", "declared", "messages", "views_created"} <= set(summary)

    def test_lazy_delivery_mode(self, example, registry, psi):
        oracle = LatticeOracle(example, psi, registry).evaluate()
        result = run_decentralized(
            example, psi, registry, deliver_after_each_event=False
        )
        assert result.declared_verdicts == oracle.conclusive_verdicts

    def test_second_property_all_paths_inconclusive_or_bottom(self, example):
        registry = PropositionRegistry(
            [
                Proposition.comparison("x1>=5", 0, "x1", ">=", 5),
                Proposition.comparison("x1=10", 0, "x1", "==", 10),
                Proposition.comparison("x2=15", 1, "x2", "==", 15),
            ]
        )
        automaton = build_monitor(
            "G({x1>=5} -> ({x2=15} U {x1=10}))", atoms=registry.names
        )
        oracle = LatticeOracle(example, automaton, registry).evaluate()
        result = run_decentralized(example, automaton, registry)
        assert result.declared_verdicts == oracle.conclusive_verdicts
        assert result.reported_verdicts >= oracle.verdicts


class TestSingleProcess:
    def test_single_process_needs_no_messages(self):
        builder = ComputationBuilder([{"p": False}])
        builder.internal(0, {"p": False})
        builder.internal(0, {"p": True})
        computation = builder.build()
        registry = PropositionRegistry([Proposition.variable("p", 0, "p")])
        automaton = build_monitor("F p", atoms=registry.names)
        result = run_decentralized(computation, automaton, registry)
        assert result.total_messages == 0
        assert result.declared_verdicts == frozenset({Verdict.TOP})


class TestMutualExclusion:
    def test_token_ring_never_violates_mutual_exclusion(self):
        computation = token_ring_example(3, rounds=1)
        registry = PropositionRegistry(
            [Proposition.variable(f"P{i}.cs", i, "cs") for i in range(3)]
        )
        automaton = build_monitor(
            "G(!(P0.cs & P1.cs) & !(P0.cs & P2.cs) & !(P1.cs & P2.cs))",
            atoms=registry.names,
        )
        oracle = LatticeOracle(computation, automaton, registry).evaluate()
        result = run_decentralized(computation, automaton, registry)
        assert Verdict.BOTTOM not in oracle.verdicts
        assert Verdict.BOTTOM not in result.declared_verdicts
        assert result.declared_verdicts == oracle.conclusive_verdicts

    def test_faulty_ring_violation_is_caught(self):
        # two processes entering the critical section concurrently
        builder = ComputationBuilder([{"cs": False}, {"cs": False}])
        builder.internal(0, {"cs": True})
        builder.internal(1, {"cs": True})
        builder.internal(0, {"cs": False})
        builder.internal(1, {"cs": False})
        computation = builder.build()
        registry = PropositionRegistry(
            [Proposition.variable(f"P{i}.cs", i, "cs") for i in range(2)]
        )
        automaton = build_monitor("G(!(P0.cs & P1.cs))", atoms=registry.names)
        oracle = LatticeOracle(computation, automaton, registry).evaluate()
        result = run_decentralized(computation, automaton, registry)
        # the violation only exists on some interleavings: both the oracle and
        # the decentralized monitors must see it, while ? paths also remain
        assert Verdict.BOTTOM in oracle.verdicts
        assert Verdict.BOTTOM in result.declared_verdicts
        assert Verdict.INCONCLUSIVE in result.reported_verdicts


class TestMonitorInternals:
    def test_monitor_rejects_foreign_events(self, example, registry, psi):
        network = LoopbackNetwork()
        initial = [registry.local_letter(i, example.initial_states[i]) for i in range(2)]
        monitors = [
            DecentralizedMonitor(i, 2, psi, registry, initial, network) for i in range(2)
        ]
        for i, monitor in enumerate(monitors):
            network.register(i, monitor)
        with pytest.raises(ValueError):
            monitors[0].local_event(example.event(1, 1))

    def test_unexpected_message_type_rejected(self, example, registry, psi):
        network = LoopbackNetwork()
        initial = [registry.local_letter(i, example.initial_states[i]) for i in range(2)]
        monitor = DecentralizedMonitor(0, 2, psi, registry, initial, network)
        with pytest.raises(TypeError):
            monitor.receive_message("bogus")

    def test_metrics_accumulate(self, example, registry, psi):
        result = run_decentralized(example, psi, registry)
        for monitor in result.monitors:
            metrics = monitor.metrics
            assert metrics.events_processed == 4
            assert metrics.views_created >= 1
            assert metrics.messages_sent == (
                metrics.token_messages_sent + metrics.termination_messages_sent
            )

    def test_views_are_merged_not_duplicated(self, example, registry, psi):
        result = run_decentralized(example, psi, registry)
        for monitor in result.monitors:
            signatures = [tuple(v.signature()) for v in monitor.active_views()]
            assert len(signatures) == len(set(signatures))

    def test_final_views_bounded_by_automaton_states(self, example, registry, psi):
        """After merging, the number of live views per monitor is bounded by
        the number of automaton states (Section 4.4)."""
        result = run_decentralized(example, psi, registry)
        for monitor in result.monitors:
            assert len(monitor.active_views()) <= psi.num_states
