"""Randomised soundness and completeness tests against the lattice oracle.

These are the correctness obligations of Chapter 3, phrased as in DESIGN.md:

* **Soundness** — every conclusive verdict (⊤/⊥) declared by any monitor is
  the verdict of some maximal lattice path.
* **Completeness (conclusive)** — every conclusive verdict reachable on some
  maximal lattice path is declared by at least one monitor.
* **Completeness (?)** — if some maximal path stays inconclusive, at least
  one monitor still holds an inconclusive view at termination.
* **Deadlock freedom** — the network quiesces and no parked token survives.
"""

import pytest

from repro.core import LatticeOracle, run_decentralized
from repro.ltl import PropositionRegistry, Verdict, build_monitor
from repro.sim import random_computation

PROPERTIES_2P = [
    "G(P0.p U P1.p)",
    "F(P0.p & P1.p)",
    "G((P0.p & P1.p) U (P0.q & P1.q))",
    "G(P0.p -> F P1.q)",
    "F(P0.q) & G(P1.p | P0.p)",
    "G(!(P0.p & P1.p))",
    "(!P0.q) U P1.p",
]

PROPERTIES_3P = [
    "G(P0.p U (P1.p & P2.p))",
    "F(P0.p & P1.p & P2.p)",
    "G(!(P0.p & P1.p & P2.p))",
    "G(P0.p -> F(P1.q & P2.q))",
]


def _check(computation, registry, formula):
    automaton = build_monitor(formula, atoms=registry.names)
    oracle = LatticeOracle(computation, automaton, registry).evaluate()
    result = run_decentralized(computation, automaton, registry)

    # soundness of conclusive verdicts
    assert result.declared_verdicts <= oracle.conclusive_verdicts, (
        f"unsound: declared {result.declared_verdicts} but oracle allows "
        f"{oracle.conclusive_verdicts} for {formula}"
    )
    # completeness of conclusive verdicts
    assert oracle.conclusive_verdicts <= result.declared_verdicts, (
        f"incomplete: oracle {oracle.conclusive_verdicts}, declared "
        f"{result.declared_verdicts} for {formula}"
    )
    # completeness of the inconclusive verdict
    if Verdict.INCONCLUSIVE in oracle.verdicts:
        assert Verdict.INCONCLUSIVE in result.reported_verdicts
    # deadlock freedom / quiescence
    assert result.is_quiescent()
    for monitor in result.monitors:
        assert not monitor.waiting_tokens
    return oracle, result


class TestTwoProcesses:
    @pytest.mark.parametrize("formula", PROPERTIES_2P)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_computations(self, formula, seed):
        computation = random_computation(2, 7 + seed % 4, seed=seed)
        registry = PropositionRegistry.boolean_grid(2)
        _check(computation, registry, formula)


class TestThreeProcesses:
    @pytest.mark.parametrize("formula", PROPERTIES_3P)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_computations(self, formula, seed):
        computation = random_computation(3, 8, seed=100 + seed)
        registry = PropositionRegistry.boolean_grid(3)
        _check(computation, registry, formula)


class TestFourProcesses:
    @pytest.mark.parametrize("seed", range(3))
    def test_case_study_style_property(self, seed):
        computation = random_computation(4, 9, seed=200 + seed)
        registry = PropositionRegistry.boolean_grid(4)
        _check(computation, registry, "G((P0.p & P1.p) U (P2.p & P3.p))")

    @pytest.mark.parametrize("seed", range(3))
    def test_eventually_property(self, seed):
        computation = random_computation(4, 9, seed=300 + seed)
        registry = PropositionRegistry.boolean_grid(4)
        _check(computation, registry, "F(P0.p & P1.p & P2.p & P3.p)")


class TestCommunicationHeavyComputations:
    """Computations with many messages stress the consistency-repair path."""

    @pytest.mark.parametrize("seed", range(4))
    def test_heavy_messaging(self, seed):
        computation = random_computation(
            3, 10, seed=400 + seed, send_probability=0.6
        )
        registry = PropositionRegistry.boolean_grid(3)
        _check(computation, registry, "G(P0.p U (P1.p & P2.p))")

    @pytest.mark.parametrize("seed", range(4))
    def test_no_messaging(self, seed):
        computation = random_computation(
            3, 8, seed=500 + seed, send_probability=0.0
        )
        registry = PropositionRegistry.boolean_grid(3)
        _check(computation, registry, "F(P0.p & P1.p & P2.p)")
