"""Cross-backend equivalence: sim and asyncio backends agree on verdicts.

The acceptance criterion of the streaming backend: for fixed seeds, running
a registered scenario on ``--backend asyncio`` produces verdicts identical
to the discrete-event simulator.  Both backends share one monitor
implementation and deliver reliably in FIFO order per channel, so the
conclusive (⊤/⊥) verdicts must coincide — only timing/queuing metrics may
differ.  These tests exercise the full scenario path (workload model →
computation, network model → delay shaping) on three registered scenarios
plus the engine- and CLI-level integration.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import BACKENDS, ExecutionConfig, ExperimentScale, run_streaming
from repro.experiments.engine import (
    execute_points,
    run_scenario,
    run_scenario_cell,
    trace_design,
)
from repro.experiments.properties import case_study_monitor, case_study_registry
from repro.scenarios import GridPoint, get_scenario
from repro.sim import generate_computation, simulate_monitored_run

REPO_ROOT = Path(__file__).resolve().parents[2]

#: the three registered scenarios the acceptance criterion is checked on,
#: covering the paper baseline, a deterministic network and a degraded one
EQUIVALENCE_SCENARIOS = ("paper-default", "fixed-latency", "lossy-retransmit")

SMALL_SCALE = ExperimentScale(
    process_counts=(2, 3),
    events_per_process=4,
    replications=2,
    max_views_per_state=2,
)


def _scenario_computation(scenario, property_name, num_processes, seed):
    """Build the exact computation a sweep cell would monitor."""
    initial_valuation, truth_probability = trace_design(property_name)
    config = scenario.workload.build_config(
        num_processes=num_processes,
        events_per_process=5,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        truth_probability=truth_probability,
        initial_valuation=dict(initial_valuation),
        seed=seed,
    )
    return generate_computation(config)


class TestVerdictEquivalence:
    @pytest.mark.parametrize("scenario_name", EQUIVALENCE_SCENARIOS)
    @pytest.mark.parametrize("seed", [2015, 77])
    @pytest.mark.parametrize("property_name", ["B", "C"])
    def test_backends_declare_identical_verdicts(
        self, scenario_name, seed, property_name
    ):
        scenario = get_scenario(scenario_name)
        num_processes = 3
        computation = _scenario_computation(
            scenario, property_name, num_processes, seed
        )
        registry = case_study_registry(num_processes)
        automaton = case_study_monitor(property_name, num_processes)
        simulated = simulate_monitored_run(
            computation,
            automaton,
            registry,
            seed=seed,
            network=scenario.network,
        )
        streamed = run_streaming(
            computation,
            automaton,
            registry,
            delay=scenario.network.delay_model(seed),
        )
        assert streamed.declared_verdicts == simulated.declared_verdicts, (
            f"backends diverged for {scenario_name}, seed {seed}, "
            f"property {property_name}"
        )

    def test_hot_spot_workload_equivalent_on_both_backends(self):
        # a fourth scenario with a non-paper workload shape
        scenario = get_scenario("hot-spot")
        computation = _scenario_computation(scenario, "B", 3, seed=5)
        registry = case_study_registry(3)
        automaton = case_study_monitor("B", 3)
        simulated = simulate_monitored_run(
            computation, automaton, registry, seed=5, network=scenario.network
        )
        streamed = run_streaming(
            computation, automaton, registry, delay=scenario.network.delay_model(5)
        )
        assert streamed.declared_verdicts == simulated.declared_verdicts


class TestCompiledKernelEquivalence:
    """The compiled step kernel must be invisible in every output.

    ``ExecutionConfig.compiled_kernel`` swaps the monitors' inner letter
    stepping (interpreted frozenset combination vs bitmask table lookups)
    without touching semantics, so the full metrics dict of a cell must be
    byte-identical either way, on every backend.
    """

    @pytest.mark.parametrize("backend", ["sim", "asyncio"])
    @pytest.mark.parametrize("seed", [2015, 77])
    def test_cell_metrics_identical_with_and_without_compiled_kernel(
        self, backend, seed
    ):
        scenario = get_scenario("lossy-retransmit")
        point = GridPoint("B", 3)
        compiled = run_scenario_cell(
            scenario,
            point,
            SMALL_SCALE,
            seed=seed,
            config=ExecutionConfig(backend=backend, compiled_kernel=True),
        )
        interpreted = run_scenario_cell(
            scenario,
            point,
            SMALL_SCALE,
            seed=seed,
            config=ExecutionConfig(backend=backend, compiled_kernel=False),
        )
        assert compiled == interpreted

    def test_sim_reports_identical_with_and_without_compiled_kernel(self):
        scenario = get_scenario("paper-default")
        computation = _scenario_computation(scenario, "B", 3, seed=2015)
        registry = case_study_registry(3)
        automaton = case_study_monitor("B", 3)
        reports = [
            simulate_monitored_run(
                computation,
                automaton,
                registry,
                seed=2015,
                network=scenario.network,
                compiled_kernel=flag,
            )
            for flag in (True, False)
        ]
        # monitors compare by identity; every metric field must coincide
        fields = [f for f in vars(reports[0]) if f != "monitors"]
        for name in fields:
            assert getattr(reports[0], name) == getattr(reports[1], name), name
        for on, off in zip(reports[0].monitors, reports[1].monitors):
            assert on.declared_verdicts == off.declared_verdicts
            assert on.declared_states == off.declared_states

    def test_streaming_verdicts_identical_with_and_without_compiled_kernel(self):
        scenario = get_scenario("paper-default")
        computation = _scenario_computation(scenario, "C", 3, seed=77)
        registry = case_study_registry(3)
        automaton = case_study_monitor("C", 3)
        on = run_streaming(
            computation,
            automaton,
            registry,
            delay=scenario.network.delay_model(77),
            compiled_kernel=True,
        )
        off = run_streaming(
            computation,
            automaton,
            registry,
            delay=scenario.network.delay_model(77),
            compiled_kernel=False,
        )
        assert on.declared_verdicts == off.declared_verdicts
        assert on.total_events == off.total_events


class TestEngineBackends:
    def test_backends_constant_names_all_executable(self):
        assert BACKENDS == ("sim", "asyncio", "cluster")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionConfig(backend="quantum")

    def test_asyncio_cells_produce_sweep_metrics(self):
        scenario = get_scenario("lossy-retransmit")
        cell = run_scenario_cell(
            scenario,
            GridPoint("B", 2),
            SMALL_SCALE,
            seed=2015,
            config=ExecutionConfig(backend="asyncio"),
        )
        for key in (
            "events",
            "messages",
            "token_messages",
            "global_views",
            "delayed_events",
            "delay_time_pct_per_view",
            "retransmissions",
        ):
            assert key in cell
        # both backends monitor the identical generated trace
        sim_cell = run_scenario_cell(
            scenario, GridPoint("B", 2), SMALL_SCALE, seed=2015
        )
        assert cell["events"] == sim_cell["events"]

    def test_asyncio_rows_have_sim_row_shape(self):
        rows_sim = run_scenario("paper-default", SMALL_SCALE)
        rows_asyncio = run_scenario(
            "paper-default", SMALL_SCALE, config=ExecutionConfig(backend="asyncio")
        )
        assert len(rows_sim) == len(rows_asyncio)
        for sim_row, asyncio_row in zip(rows_sim, rows_asyncio):
            assert set(sim_row) == set(asyncio_row)
            assert sim_row["property"] == asyncio_row["property"]
            assert sim_row["processes"] == asyncio_row["processes"]
            assert sim_row["events"] == asyncio_row["events"]

    def test_asyncio_backend_runs_sharded(self):
        scenario = get_scenario("paper-default")
        points = [GridPoint("B", 2), GridPoint("E", 2)]
        sharded_scale = ExperimentScale(
            process_counts=(2,),
            events_per_process=4,
            replications=2,
            max_views_per_state=2,
            workers=2,
        )
        rows = execute_points(
            scenario,
            points,
            sharded_scale,
            config=ExecutionConfig(backend="asyncio"),
        )
        assert len(rows) == 2
        assert all(row["events"] > 0 for row in rows)


class TestCliBackendFlag:
    def _run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", *argv],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_run_backend_asyncio_smoke(self):
        result = self._run_cli(
            "run",
            "--scenario",
            "fixed-latency",
            "--backend",
            "asyncio",
            "--processes",
            "2",
            "--events",
            "3",
            "--replications",
            "1",
        )
        assert result.returncode == 0, result.stderr
        assert "backend asyncio" in result.stdout
        assert "fixed-latency" in result.stdout

    def test_bench_tags_backends(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        result = self._run_cli(
            "bench",
            "--backend",
            "asyncio",
            "--scenario",
            "fixed-latency",
            "--processes",
            "2",
            "--events",
            "3",
            "--replications",
            "1",
            "--json",
            str(out),
        )
        assert result.returncode == 0, result.stderr
        document = json.loads(out.read_text())
        timings = document["timings"]
        assert timings["run_monitoring_experiment"]["backend"] == "sim"
        asyncio_timing = timings["scenario_fixed-latency_asyncio"]
        assert asyncio_timing["backend"] == "asyncio"
        assert asyncio_timing["stream_transport"] == "memory"
        assert "fixed-latency" in document["scenarios"]
