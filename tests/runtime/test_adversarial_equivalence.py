"""Cross-backend equivalence of the adversarial scenarios.

Mirrors ``test_backend_equivalence.py`` for the PR's new conditions: the
``node-churn`` and ``clock-skew`` scenarios must declare identical verdicts
on the discrete-event simulator, the asyncio streaming runtime and the
multi-process cluster runtime at fixed seeds — churn triggers live in
local-event space and clock skew transforms the computation before any
monitor runs, so both are backend-invariant by construction.  The
``byzantine-storm`` scenario is deliberately *not* compared across
backends (its triggers count messages, whose arrival order is
backend-specific); it is checked against the centralized oracle instead.
"""

from dataclasses import replace

import pytest

from repro.api import (
    RunSpec,
    cluster_monitored_run,
    run_streaming,
)
from repro.cluster.spec import build_cell_inputs
from repro.core.centralized import CentralizedMonitor
from repro.core.monitor import verdict_divergence
from repro.scenarios import get_scenario
from repro.sim import simulate_monitored_run

ADVERSARIAL_EQUIVALENCE_SCENARIOS = ("node-churn", "clock-skew")


def _spec(scenario_name, property_name="B", seed=2015, num_processes=3):
    scenario = get_scenario(scenario_name)
    plan = None
    if scenario.faults is not None:
        plan = scenario.faults.build(num_processes, 4, seed)
    from repro.faults import format_fault_plan

    return RunSpec(
        scenario=scenario_name,
        property_name=property_name,
        num_processes=num_processes,
        events_per_process=4,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        seed=seed,
        max_views_per_state=2,
        fault_plan=None if plan is None else format_fault_plan(plan),
    )


def _sim(spec):
    computation, automaton, registry = build_cell_inputs(spec)
    return simulate_monitored_run(
        computation,
        automaton,
        registry,
        seed=spec.seed,
        max_views_per_state=spec.max_views_per_state,
        network=get_scenario(spec.scenario).network,
        faults=spec.faults(),
        compiled_kernel=spec.compiled_kernel,
    )


def _asyncio(spec):
    computation, automaton, registry = build_cell_inputs(spec)
    return run_streaming(
        computation,
        automaton,
        registry,
        delay=get_scenario(spec.scenario).network.delay_model(spec.seed),
        max_views_per_state=spec.max_views_per_state,
        faults=spec.faults(),
        compiled_kernel=spec.compiled_kernel,
    )


class TestAdversarialBackendEquivalence:
    @pytest.mark.parametrize("scenario_name", ADVERSARIAL_EQUIVALENCE_SCENARIOS)
    @pytest.mark.parametrize("seed", [2015, 77])
    @pytest.mark.parametrize("property_name", ["B", "C"])
    def test_sim_and_asyncio_declare_identical_verdicts(
        self, scenario_name, seed, property_name
    ):
        spec = _spec(scenario_name, property_name, seed)
        simulated = _sim(spec)
        streamed = _asyncio(spec)
        assert streamed.declared_verdicts == simulated.declared_verdicts, (
            f"backends diverged for {scenario_name}, seed {seed}, "
            f"property {property_name}"
        )
        # the fault condition actually fired on both backends
        if scenario_name == "node-churn":
            assert simulated.fault_stats["fault_crashes"] > 0
            assert streamed.fault_stats["fault_crashes"] == (
                simulated.fault_stats["fault_crashes"]
            )
        else:
            assert streamed.fault_stats["fault_skew_perturbed_events"] == (
                simulated.fault_stats["fault_skew_perturbed_events"]
            )

    @pytest.mark.parametrize("scenario_name", ADVERSARIAL_EQUIVALENCE_SCENARIOS)
    def test_cluster_matches_sim_verdicts(self, scenario_name):
        spec = _spec(scenario_name)
        simulated = _sim(spec)
        clustered = cluster_monitored_run(spec)
        assert clustered.declared_verdicts == simulated.declared_verdicts, (
            f"cluster diverged from sim for {scenario_name}"
        )
        # skew counters are reported once (worker 0), not once per worker
        if scenario_name == "clock-skew":
            assert clustered.fault_stats["fault_skew_perturbed_events"] == (
                simulated.fault_stats["fault_skew_perturbed_events"]
            )

    def test_compiled_kernel_pairing_on_adversarial_cluster_run(self):
        # one compiled-kernel off/on pairing through real worker processes
        spec = _spec("node-churn")
        assert spec.compiled_kernel is True
        compiled = cluster_monitored_run(spec)
        interpreted = cluster_monitored_run(replace(spec, compiled_kernel=False))
        assert compiled.declared_verdicts == interpreted.declared_verdicts
        assert compiled.total_events == interpreted.total_events

    def test_compiled_kernel_pairing_on_skewed_sim_run(self):
        spec = _spec("clock-skew")
        on = _sim(spec)
        off = _sim(replace(spec, compiled_kernel=False))
        assert on.declared_verdicts == off.declared_verdicts
        assert on.fault_stats == off.fault_stats


class TestByzantineStormAgainstOracle:
    def test_storm_verdicts_against_centralized_oracle(self):
        # byzantine-storm arms duplication + corruption + replay; corruption
        # attacks soundness, so the assertion here is the *oracle* one the
        # scenario documents: the run completes, behaviours fire, and any
        # sound-looking verdict set is a subset of the oracle's
        spec = _spec("byzantine-storm")
        computation, automaton, registry = build_cell_inputs(spec)
        report = _sim(spec)
        assert report.fault_stats["fault_byz_duplicated"] >= 0
        oracle = CentralizedMonitor.monitor_computation_declared(
            computation, automaton, registry
        )
        divergence = verdict_divergence(report.declared_verdicts, oracle)
        # with corruption armed divergence is permitted; record-style check:
        # the helper returns exactly the declared-minus-oracle difference
        assert divergence == frozenset(report.declared_verdicts) - oracle
