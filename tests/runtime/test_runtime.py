"""Tests for the asyncio streaming backend: transports, nodes, runner."""

import asyncio

import pytest

from repro.core import DecentralizedMonitor, MonitorNetwork, MonitorNode, run_decentralized
from repro.core.delays import (
    BurstyDelay,
    GaussianDelay,
    LossyRetransmitDelay,
    PartitionDelay,
)
from repro.experiments.properties import case_study_registry
from repro.ltl import build_monitor
from repro.runtime import InMemoryStreamTransport, RuntimeClock, TcpStreamTransport
from repro.runtime.runner import run_streaming
from repro.sim import random_computation, simulate_monitored_run

FORMULAS = ["F(P0.p & P1.p)", "G(P0.p U P1.q)", "G(!(P0.p & P1.q))"]


def _case(num_processes=3, events=10, seed=42, formula=FORMULAS[0]):
    registry = case_study_registry(num_processes)
    automaton = build_monitor(formula, atoms=registry.names)
    computation = random_computation(num_processes, events, seed=seed)
    return computation, automaton, registry


class _EchoNode:
    """Minimal node double: records deliveries and acknowledges instantly."""

    def __init__(self, process, transport):
        self.process = process
        self.transport = transport
        self.received = []
        self.pending_items = 0

    def enqueue_message(self, due, message):
        self.received.append((due, message))
        self.transport.message_done(due)

    def failure(self):
        return None


class TestStreamTransport:
    def test_satisfies_monitor_network_protocol(self):
        transport = InMemoryStreamTransport()
        assert isinstance(transport, MonitorNetwork)

    def test_unknown_target_rejected(self):
        async def main():
            transport = InMemoryStreamTransport()
            transport.register(0, _EchoNode(0, transport))
            with pytest.raises(ValueError, match="no monitor node"):
                transport.send(0, 9, "msg")

        asyncio.run(main())

    def test_fifo_preserved_per_channel_under_jitter(self):
        async def main():
            # heavy jitter would reorder without the per-channel clamp
            transport = InMemoryStreamTransport(
                delay=GaussianDelay(latency=0.05, jitter=0.05, seed=7)
            )
            sink = _EchoNode(1, transport)
            transport.register(0, _EchoNode(0, transport))
            transport.register(1, sink)
            await transport.start()
            for i in range(50):
                transport.send(0, 1, i)
            await transport.wait_quiescent(timeout=10.0)
            await transport.aclose()
            return sink.received

        received = asyncio.run(main())
        assert [message for _, message in received] == list(range(50))
        # delivery instants are monotone on the channel
        dues = [due for due, _ in received]
        assert dues == sorted(dues)

    def test_counters_and_quiescence(self):
        async def main():
            transport = InMemoryStreamTransport()
            sink = _EchoNode(1, transport)
            transport.register(0, _EchoNode(0, transport))
            transport.register(1, sink)
            await transport.start()
            transport.send(0, 1, "a")
            transport.send(0, 1, "b")
            assert transport.pending == 2
            await transport.wait_quiescent(timeout=10.0)
            assert transport.pending == 0
            assert transport.messages_sent == 2
            assert transport.messages_delivered == 2
            assert transport.messages_by_sender == {0: 2}
            await transport.aclose()

        asyncio.run(main())

    def test_delay_stats_exposed(self):
        async def main():
            delay = LossyRetransmitDelay(
                jitter=0.0, seed=3, loss_probability=0.5, retransmit_timeout=0.3
            )
            transport = InMemoryStreamTransport(delay=delay)
            sink = _EchoNode(1, transport)
            transport.register(1, sink)
            await transport.start()
            for i in range(40):
                transport.send(0, 1, i)
            await transport.wait_quiescent(timeout=10.0)
            await transport.aclose()
            return transport.extra_stats()

        stats = asyncio.run(main())
        assert stats["retransmissions"] > 0

    def test_dead_node_task_surfaces_instead_of_timing_out(self):
        """A monitor that raises must fail the run fast with its own error."""
        from repro.runtime import StreamMonitorNode

        class _ExplodingMonitor:
            process = 1

            def receive_message(self, message):
                raise TypeError("unexpected monitor message")

        async def main():
            transport = InMemoryStreamTransport()
            node = StreamMonitorNode(_ExplodingMonitor(), transport)
            transport.register(0, _EchoNode(0, transport))
            transport.register(1, node)
            await transport.start()
            node.start_task()
            transport.send(0, 1, "boom")
            try:
                with pytest.raises(TypeError, match="unexpected monitor message"):
                    # far below the run's real timeout: the error must
                    # surface via task-death detection, not the deadline
                    await transport.wait_quiescent(timeout=30.0)
            finally:
                await transport.aclose()

        asyncio.run(asyncio.wait_for(main(), timeout=10.0))

    def test_tcp_transport_delivers_over_real_sockets(self):
        async def main():
            transport = TcpStreamTransport()
            sinks = {p: _EchoNode(p, transport) for p in (0, 1)}
            for p, sink in sinks.items():
                transport.register(p, sink)
            await transport.start()
            assert set(transport.ports) == {0, 1}
            assert all(port > 0 for port in transport.ports.values())
            for i in range(20):
                transport.send(0, 1, i)
                transport.send(1, 0, -i)
            await transport.wait_quiescent(timeout=30.0)
            await transport.aclose()
            return sinks

        sinks = asyncio.run(main())
        assert [m for _, m in sinks[1].received] == list(range(20))
        assert [m for _, m in sinks[0].received] == [-i for i in range(20)]


class TestTcpMidFrameDisconnect:
    """A peer dying mid-frame must surface a precise diagnostic.

    Regression: a disconnect inside a frame used to surface as a raw
    ``EOFError`` (or a bogus quiescence timeout) instead of naming the
    truncated frame.  The reader now records a ``ConnectionError`` as
    ``transport.fatal_error`` and ``wait_quiescent`` re-raises it.  Frames
    are wire protocol v2 (:mod:`repro.cluster.codec`): raw bytes written
    here carry the magic/version/type header, and undecodable or
    wrong-version frames must surface the codec's diagnostics the same way.
    """

    @staticmethod
    async def _transport_with_sink():
        transport = TcpStreamTransport()
        sink = _EchoNode(0, transport)
        transport.register(0, sink)
        await transport.start()
        return transport, sink

    @staticmethod
    async def _wait_for_fatal(transport, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while transport.fatal_error is None:
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError("fatal_error was never recorded")
            await asyncio.sleep(0.005)

    def test_truncated_length_prefix_reported(self):
        async def main():
            transport, _ = await self._transport_with_sink()
            try:
                _, writer = await asyncio.open_connection("127.0.0.1", transport.ports[0])
                writer.write(b"RW")  # 2 of the 8 frame-header bytes
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await self._wait_for_fatal(transport)
                with pytest.raises(ConnectionError, match="mid-frame.*frame-header"):
                    await transport.wait_quiescent(timeout=5.0)
            finally:
                await transport.aclose()

        asyncio.run(asyncio.wait_for(main(), timeout=15.0))

    def test_truncated_payload_reported(self):
        async def main():
            transport, _ = await self._transport_with_sink()
            try:
                _, writer = await asyncio.open_connection("127.0.0.1", transport.ports[0])
                # a full header announcing 100 payload bytes, then only 10
                from repro.cluster import codec

                header = codec.HEADER.pack(
                    codec.MAGIC, codec.PROTOCOL_VERSION, codec.TYPE_VALUE, 100
                )
                writer.write(header + b"x" * 10)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await self._wait_for_fatal(transport)
                with pytest.raises(
                    ConnectionError, match="10 of 100 payload bytes"
                ):
                    await transport.wait_quiescent(timeout=5.0)
            finally:
                await transport.aclose()

        asyncio.run(asyncio.wait_for(main(), timeout=15.0))

    def test_reset_after_header_reported_as_mid_frame(self):
        async def main():
            transport, _ = await self._transport_with_sink()
            try:
                import socket
                import struct

                from repro.cluster import codec

                _, writer = await asyncio.open_connection("127.0.0.1", transport.ports[0])
                # a valid v2 header announcing 100 bytes, then RST
                writer.write(
                    codec.HEADER.pack(
                        codec.MAGIC, codec.PROTOCOL_VERSION, codec.TYPE_VALUE, 100
                    )
                )
                await writer.drain()
                await asyncio.sleep(0.05)  # let the server consume the header
                sock = writer.get_extra_info("socket")
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),  # linger=0: close sends RST
                )
                writer.close()
                await self._wait_for_fatal(transport)
                with pytest.raises(ConnectionError, match="reset the connection mid-frame"):
                    await transport.wait_quiescent(timeout=5.0)
            finally:
                await transport.aclose()

        asyncio.run(asyncio.wait_for(main(), timeout=15.0))

    def test_undecodable_frame_reported(self):
        async def main():
            transport, _ = await self._transport_with_sink()
            try:
                _, writer = await asyncio.open_connection("127.0.0.1", transport.ports[0])
                import struct

                from repro.cluster import codec

                # a v1-style frame: length prefix + pickle-shaped garbage —
                # its first bytes can never spell the v2 magic
                garbage = b"not a v2 frame"
                writer.write(struct.pack(">I", len(garbage)) + garbage)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await self._wait_for_fatal(transport)
                with pytest.raises(
                    codec.CorruptFrameError,
                    match="bad frame magic.*no longer supported",
                ):
                    await transport.wait_quiescent(timeout=5.0)
            finally:
                await transport.aclose()

        asyncio.run(asyncio.wait_for(main(), timeout=15.0))

    def test_wrong_protocol_version_reported(self):
        async def main():
            transport, _ = await self._transport_with_sink()
            try:
                from repro.cluster import codec

                _, writer = await asyncio.open_connection("127.0.0.1", transport.ports[0])
                # a structurally valid frame claiming protocol version 1
                writer.write(codec.HEADER.pack(codec.MAGIC, 1, codec.TYPE_VALUE, 0))
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await self._wait_for_fatal(transport)
                with pytest.raises(
                    codec.ProtocolVersionError,
                    match="peer speaks wire protocol version 1",
                ):
                    await transport.wait_quiescent(timeout=5.0)
            finally:
                await transport.aclose()

        asyncio.run(asyncio.wait_for(main(), timeout=15.0))

    def test_clean_close_between_frames_is_not_an_error(self):
        class _Recorder:
            """Node double that records without acking: the injected frame
            was never transport-tracked, so acking it would drive the
            in-flight counter negative."""

            process = 0
            pending_items = 0
            received = []

            def enqueue_message(self, due, message):
                self.received.append((due, message))

            def failure(self):
                return None

        async def main():
            transport = TcpStreamTransport()
            sink = _Recorder()
            sink.received = []
            transport.register(0, sink)
            await transport.start()
            try:
                from repro.cluster import codec

                _, writer = await asyncio.open_connection("127.0.0.1", transport.ports[0])
                writer.write(codec.encode_wire(0.0, "hello"))
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                deadline = asyncio.get_running_loop().time() + 5.0
                while not sink.received:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.005)
                # an out-of-band frame is not transport-tracked in-flight
                # work, so quiescence must hold and no error may be recorded
                await transport.wait_quiescent(timeout=5.0)
                assert transport.fatal_error is None
                return sink.received
            finally:
                await transport.aclose()

        received = asyncio.run(asyncio.wait_for(main(), timeout=15.0))
        assert [message for _, message in received] == ["hello"]


class TestRuntimeClock:
    def test_negative_time_scale_rejected(self):
        with pytest.raises(ValueError):
            RuntimeClock(time_scale=-1.0)

    def test_now_is_monotone_high_water_mark(self):
        async def main():
            clock = RuntimeClock()
            await clock.sleep_until(5.0)
            await clock.sleep_until(2.0)
            return clock.now

        assert asyncio.run(main()) == 5.0


class TestStreamingRuns:
    def test_monitor_satisfies_node_protocol(self):
        computation, automaton, registry = _case()
        monitor = DecentralizedMonitor(
            process=0,
            num_processes=3,
            automaton=automaton,
            registry=registry,
            initial_letters=[
                registry.local_letter(i, computation.initial_states[i])
                for i in range(3)
            ],
            transport=InMemoryStreamTransport(),
        )
        assert isinstance(monitor, MonitorNode)

    def test_unknown_transport_rejected(self):
        computation, automaton, registry = _case()
        with pytest.raises(ValueError, match="unknown streaming transport"):
            run_streaming(computation, automaton, registry, transport="pigeon")

    @pytest.mark.parametrize("formula", FORMULAS)
    @pytest.mark.parametrize("seed", [1, 17, 2015])
    def test_memory_verdicts_match_loopback_and_simulator(self, formula, seed):
        computation, automaton, registry = _case(seed=seed, formula=formula)
        loopback = run_decentralized(computation, automaton, registry)
        simulated = simulate_monitored_run(
            computation, automaton, registry, seed=seed
        )
        streamed = run_streaming(
            computation,
            automaton,
            registry,
            delay=GaussianDelay(0.05, 0.01, seed=seed),
        )
        assert streamed.declared_verdicts == loopback.declared_verdicts
        assert streamed.declared_verdicts == simulated.declared_verdicts

    @pytest.mark.parametrize(
        "delay",
        [
            None,
            GaussianDelay(0.05, 0.01, seed=5),
            LossyRetransmitDelay(seed=5, loss_probability=0.3),
            PartitionDelay(seed=5, windows=((1.0, 4.0),)),
            BurstyDelay(seed=5, period=0.5),
        ],
        ids=["none", "gaussian", "lossy", "partition", "bursty"],
    )
    def test_all_delay_models_preserve_verdicts(self, delay):
        computation, automaton, registry = _case(seed=11)
        loopback = run_decentralized(computation, automaton, registry)
        streamed = run_streaming(computation, automaton, registry, delay=delay)
        assert streamed.declared_verdicts == loopback.declared_verdicts

    def test_tcp_run_matches_memory_run_verdicts(self):
        computation, automaton, registry = _case(seed=23)
        memory = run_streaming(computation, automaton, registry)
        tcp = run_streaming(computation, automaton, registry, transport="tcp")
        assert tcp.transport == "tcp"
        assert tcp.declared_verdicts == memory.declared_verdicts
        assert tcp.monitor_messages > 0

    def test_report_shape_and_stats(self):
        computation, automaton, registry = _case(seed=9)
        report = run_streaming(
            computation,
            automaton,
            registry,
            delay=LossyRetransmitDelay(seed=9, loss_probability=0.4),
        )
        row = report.as_dict()
        for key in (
            "processes",
            "events",
            "messages",
            "token_messages",
            "global_views",
            "delayed_events",
            "delay_time_pct_per_view",
            "verdicts",
            "transport",
        ):
            assert key in row
        assert "retransmissions" in report.network_stats
        assert report.wall_seconds > 0
        assert report.monitor_end_time >= report.program_end_time

    def test_time_scale_paces_wall_clock(self):
        computation, automaton, registry = _case(num_processes=2, events=3, seed=4)
        fast = run_streaming(computation, automaton, registry)
        program_span = fast.program_end_time
        paced = run_streaming(
            computation, automaton, registry, time_scale=0.01
        )
        # pacing at 10ms per virtual second must take at least the span
        assert paced.wall_seconds >= min(0.2, program_span * 0.01 * 0.5)
        assert paced.declared_verdicts == fast.declared_verdicts
