"""Tests for the per-seed fault models scenarios carry in their ``faults`` field."""

import json
import pickle

import pytest

from repro.faults import (
    CrashSpec,
    ExplicitFaults,
    FaultModel,
    FaultPlan,
    RollingCrashFaults,
    SingleCrashFaults,
)

ALL_MODELS = [
    ExplicitFaults(FaultPlan((CrashSpec(process=0, after_events=2),))),
    SingleCrashFaults(),
    SingleCrashFaults(down_events=3, recovery="rejoin"),
    RollingCrashFaults(down_events=2),
]


class TestProtocol:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_models_satisfy_protocol_and_pickle(self, model):
        assert isinstance(model, FaultModel)
        assert pickle.loads(pickle.dumps(model)) == model

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_describe_is_json_serialisable_with_kind(self, model):
        description = json.loads(json.dumps(model.describe()))
        assert "kind" in description


class TestExplicitFaults:
    def test_returns_wrapped_plan_unchanged(self):
        plan = FaultPlan((CrashSpec(process=1, after_events=4),))
        model = ExplicitFaults(plan)
        assert model.build(3, 10, seed=7) is plan
        assert model.build(3, 10, seed=8) is plan  # seed-independent


class TestSingleCrashFaults:
    def test_deterministic_per_seed(self):
        model = SingleCrashFaults()
        assert model.build(4, 10, seed=3) == model.build(4, 10, seed=3)

    def test_different_seeds_vary_the_schedule(self):
        model = SingleCrashFaults()
        plans = {model.build(8, 50, seed=s) for s in range(30)}
        assert len(plans) > 1

    def test_spec_within_system_bounds(self):
        model = SingleCrashFaults(down_events=2, recovery="rejoin")
        for seed in range(25):
            plan = model.build(3, 10, seed=seed)
            (spec,) = plan.crashes
            assert 0 <= spec.process < 3
            assert 1 <= spec.after_events <= 9
            assert spec.down_events == 2
            assert spec.recovery == "rejoin"

    def test_single_event_traces_still_buildable(self):
        plan = SingleCrashFaults().build(2, 1, seed=0)
        (spec,) = plan.crashes
        assert spec.after_events == 1

    def test_none_seed_supported(self):
        assert SingleCrashFaults().build(2, 10, seed=None).crashes


class TestRollingCrashFaults:
    def test_every_monitor_crashes_exactly_once(self):
        plan = RollingCrashFaults().build(5, 10, seed=11)
        assert sorted(spec.process for spec in plan.crashes) == list(range(5))

    def test_deterministic_per_seed(self):
        model = RollingCrashFaults(down_events=2)
        assert model.build(4, 12, seed=9) == model.build(4, 12, seed=9)

    def test_fault_rng_stream_independent_of_workload_rng(self):
        # same raw seed as a workload would use, but salted: the schedule must
        # not be a function of random.Random(seed)'s first draws
        import random

        model = SingleCrashFaults()
        plan = model.build(16, 1000, seed=1234)
        workload_rng = random.Random(1234)
        (spec,) = plan.crashes
        assert (spec.process, spec.after_events) != (
            workload_rng.randrange(16),
            workload_rng.randint(1, 999),
        )
