"""Mutation-style soundness tests for the adversarial fault behaviours.

Two families:

1. **No-op adversaries are invisible** — a plan whose :class:`ByzantineSpec`
   arms nothing (and whose skew rate is zero) must produce byte-identical
   reports to running with no plan at all, on every built-in scenario and
   on both in-process backends.  This is the mutation-test style guarantee
   that merely *routing* through the adversarial code paths perturbs
   nothing.
2. **Armed behaviours are observable and sound** — each adversarial
   behaviour enabled alone fires at least once (its counter appears in run
   reports and sweep rows) and the benign behaviours (duplication, stale
   replay, drop-on-send, sound skew) never make the decentralized run
   declare a verdict the centralized oracle denies.
"""

import json

import pytest

from repro.api import ExperimentScale, run_scenario, run_streaming
from repro.cluster.spec import RunSpec, build_cell_inputs
from repro.core.centralized import CentralizedMonitor
from repro.core.monitor import verdict_divergence
from repro.experiments.properties import case_study_registry
from repro.faults import (
    ByzantineSpec,
    ClockSkewSpec,
    FaultPlan,
)
from repro.ltl import build_monitor
from repro.scenarios import get_scenario, scenario_names
from repro.sim import random_computation, simulate_monitored_run

NOOP_ADVERSARIAL_PLAN = FaultPlan(
    byzantine=(ByzantineSpec(process=0),),
    clock_skew=ClockSkewSpec(rate=0.0),
)


def _spec_for(scenario_name):
    return RunSpec(
        scenario=scenario_name,
        property_name="B",
        num_processes=2,
        events_per_process=3,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        seed=11,
        max_views_per_state=2,
    )


class TestNoopAdversariesAreInvisible:
    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_sim_byte_identical_on_every_builtin_scenario(self, scenario_name):
        computation, automaton, registry = build_cell_inputs(
            _spec_for(scenario_name)
        )
        network = get_scenario(scenario_name).network
        baseline = simulate_monitored_run(
            computation, automaton, registry, seed=11, network=network,
            max_views_per_state=2,
        )
        report = simulate_monitored_run(
            computation, automaton, registry, seed=11, network=network,
            max_views_per_state=2, faults=NOOP_ADVERSARIAL_PLAN,
        )
        assert json.dumps(report.as_dict(), sort_keys=True) == json.dumps(
            baseline.as_dict(), sort_keys=True
        )

    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_asyncio_row_identical_on_every_builtin_scenario(self, scenario_name):
        computation, automaton, registry = build_cell_inputs(
            _spec_for(scenario_name)
        )
        network = get_scenario(scenario_name).network
        # delay models are stateful (their RNG advances per draw), so each
        # run gets its own freshly-seeded instance
        baseline = run_streaming(
            computation, automaton, registry, delay=network.delay_model(11),
            max_views_per_state=2,
        )
        report = run_streaming(
            computation, automaton, registry, delay=network.delay_model(11),
            max_views_per_state=2, faults=NOOP_ADVERSARIAL_PLAN,
        )
        base_row, row = baseline.as_dict(), report.as_dict()
        for entry in (base_row, row):
            # the wall-clock-derived columns are legitimately nondeterministic
            # on the streaming backend; everything else must match exactly
            for key in ("wall_seconds", "monitor_extra_time", "delay_time_pct_per_view"):
                entry.pop(key, None)
        assert json.dumps(row, sort_keys=True) == json.dumps(base_row, sort_keys=True)


# ---------------------------------------------------------------------------
# armed behaviours: observable, counted, and (where promised) sound
# ---------------------------------------------------------------------------
def _case(seed=42, num_processes=3, events=20):
    registry = case_study_registry(num_processes)
    automaton = build_monitor("F(P0.p & P1.p)", atoms=registry.names)
    computation = random_computation(num_processes, events, seed=seed)
    return computation, automaton, registry


def _oracle_declared(computation, automaton, registry):
    return CentralizedMonitor.monitor_computation_declared(
        computation, automaton, registry
    )


BEHAVIOURS = [
    ("duplicate_every", "fault_byz_duplicated"),
    ("corrupt_every", "fault_byz_corrupted"),
    ("replay_every", "fault_byz_replayed"),
    ("drop_every", "fault_byz_dropped"),
]


class TestEachBehaviourAloneIsObserved:
    @pytest.mark.parametrize("field,counter", BEHAVIOURS)
    def test_behaviour_fires_and_is_counted(self, field, counter):
        computation, automaton, registry = _case()
        plan = FaultPlan(
            byzantine=(ByzantineSpec(process=1, **{field: 2}),)
        )
        report = simulate_monitored_run(
            computation, automaton, registry, seed=42, faults=plan
        )
        assert report.fault_stats[counter] > 0, (
            f"{field}=2 never fired: {report.fault_stats}"
        )
        # only the armed behaviour's counter exists — the others never even
        # appear, preserving the historical metric-row shape
        for _, other in BEHAVIOURS:
            if other != counter:
                assert other not in report.fault_stats

    @pytest.mark.parametrize("field", ["duplicate_every", "replay_every", "drop_every"])
    def test_benign_behaviours_stay_sound(self, field):
        computation, automaton, registry = _case()
        oracle = _oracle_declared(computation, automaton, registry)
        plan = FaultPlan(byzantine=(ByzantineSpec(process=1, **{field: 2}),))
        report = simulate_monitored_run(
            computation, automaton, registry, seed=42, faults=plan
        )
        assert verdict_divergence(report.declared_verdicts, oracle) == frozenset()

    def test_sound_skew_stays_sound_and_is_counted(self):
        computation, automaton, registry = _case()
        oracle = _oracle_declared(computation, automaton, registry)
        plan = FaultPlan(clock_skew=ClockSkewSpec(rate=1.0, magnitude=2, seed=3))
        report = simulate_monitored_run(
            computation, automaton, registry, seed=42, faults=plan
        )
        assert report.fault_stats["fault_skew_perturbed_events"] > 0
        assert report.fault_stats["fault_skew_distortion"] > 0
        assert verdict_divergence(report.declared_verdicts, oracle) == frozenset()

    def test_corruption_fires_without_crashing_the_run(self):
        # corruption attacks soundness, so no verdict promise here — but the
        # run must classify, never crash, and the counter must register
        computation, automaton, registry = _case()
        plan = FaultPlan(byzantine=(ByzantineSpec(process=0, corrupt_every=2),))
        report = simulate_monitored_run(
            computation, automaton, registry, seed=42, faults=plan
        )
        assert report.fault_stats["fault_byz_corrupted"] > 0


SMALL_SCALE = ExperimentScale(
    process_counts=(3,),
    events_per_process=4,
    replications=2,
    max_views_per_state=2,
)


class TestAdversarialScenarioSweeps:
    def test_byzantine_storm_rows_carry_behaviour_counters(self):
        rows = run_scenario("byzantine-storm", SMALL_SCALE)
        assert rows
        for counter in (
            "fault_byz_duplicated",
            "fault_byz_corrupted",
            "fault_byz_replayed",
        ):
            assert all(counter in row for row in rows)
            assert any(row[counter] > 0 for row in rows), counter

    def test_clock_skew_rows_carry_skew_counters(self):
        rows = run_scenario("clock-skew", SMALL_SCALE)
        assert rows
        assert all("fault_skew_perturbed_events" in row for row in rows)
        assert any(row["fault_skew_perturbed_events"] > 0 for row in rows)

    def test_node_churn_rows_record_rejoins(self):
        rows = run_scenario("node-churn", SMALL_SCALE)
        assert rows
        assert any(row["fault_crashes"] > 0 for row in rows)
        assert any(row["fault_restarts"] > 0 for row in rows)
