"""Unit tests for the backend-agnostic crash/restart proxy machinery."""

from repro.core.monitor import MonitorMetrics
from repro.faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    MonitorFaultProxy,
    unwrap_monitor,
)


class ScriptedMonitor:
    """Monitor double recording the exact order of calls it receives."""

    instances = 0

    def __init__(self, process=0):
        type(self).instances += 1
        self.incarnation = type(self).instances
        self.process = process
        self.calls = []
        self.declared_verdicts = set()
        self.declared_states = set()
        self.terminated = {process: None, 99: 42}
        self.metrics = MonitorMetrics()

    def start(self):
        self.calls.append("start")

    def local_event(self, event):
        self.calls.append(("event", event))

    def local_termination(self):
        self.calls.append("termination")

    def receive_message(self, message):
        self.calls.append(("message", message))

    def reported_verdicts(self):
        return set(self.declared_verdicts)


def make_proxy(specs, process=0):
    stats = FaultInjector(FaultPlan(specs), 4).stats
    return MonitorFaultProxy(lambda: ScriptedMonitor(process), tuple(specs), stats)


class TestProxyLifecycle:
    def test_up_proxy_delegates_transparently(self):
        proxy = make_proxy([CrashSpec(process=0, after_events=99)])
        proxy.start()
        proxy.local_event("e1")
        proxy.receive_message("m1")
        proxy.local_termination()
        assert proxy.monitor.calls == [
            "start",
            ("event", "e1"),
            ("message", "m1"),
            "termination",
        ]
        assert not proxy.is_down

    def test_crash_triggers_after_nth_event(self):
        proxy = make_proxy([CrashSpec(process=0, after_events=2, down_events=2)])
        proxy.local_event("e1")
        assert not proxy.is_down
        proxy.local_event("e2")
        assert proxy.is_down
        assert proxy.stats.crashes == 1

    def test_downtime_buffers_events_and_holds_messages(self):
        proxy = make_proxy([CrashSpec(process=0, after_events=1, down_events=2)])
        proxy.local_event("e1")  # crash point
        proxy.local_event("e2")
        proxy.receive_message("m1")
        proxy.local_event("e3")
        assert proxy.is_down
        # nothing beyond the crash point reached the monitor yet
        assert proxy.monitor.calls == [("event", "e1")]
        assert proxy.stats.buffered_events == 2
        assert proxy.stats.held_messages == 1

    def test_restart_drains_held_messages_before_buffered_events(self):
        proxy = make_proxy([CrashSpec(process=0, after_events=1, down_events=2)])
        proxy.local_event("e1")
        proxy.local_event("e2")
        proxy.receive_message("m1")
        proxy.local_event("e3")
        proxy.local_event("e4")  # exceeds down_events=2: restart, then process
        assert not proxy.is_down
        assert proxy.monitor.calls == [
            ("event", "e1"),
            ("message", "m1"),  # held messages are older: flushed first
            ("event", "e2"),
            ("event", "e3"),
            ("event", "e4"),
        ]
        assert proxy.stats.restarts == 1

    def test_zero_downtime_restarts_on_next_event(self):
        proxy = make_proxy([CrashSpec(process=0, after_events=1, down_events=0)])
        proxy.local_event("e1")
        assert proxy.is_down
        proxy.local_event("e2")
        assert not proxy.is_down
        assert proxy.monitor.calls == [("event", "e1"), ("event", "e2")]

    def test_termination_force_restarts_down_monitor(self):
        proxy = make_proxy([CrashSpec(process=0, after_events=1, down_events=50)])
        proxy.local_event("e1")
        proxy.local_event("e2")
        proxy.receive_message("m1")
        assert proxy.is_down
        proxy.local_termination()
        assert not proxy.is_down
        assert proxy.stats.forced_restarts == 1
        # drained everything, then terminated — a crash never swallows the end
        assert proxy.monitor.calls == [
            ("event", "e1"),
            ("message", "m1"),
            ("event", "e2"),
            "termination",
        ]

    def test_consecutive_cycles_fire_in_order(self):
        proxy = make_proxy(
            [
                CrashSpec(process=0, after_events=1, down_events=0),
                CrashSpec(process=0, after_events=3, down_events=0),
            ]
        )
        for i in range(5):
            proxy.local_event(i)
        assert proxy.stats.crashes == 2
        assert proxy.stats.restarts == 2


class TestRejoinRecovery:
    def test_replay_keeps_the_same_monitor_instance(self):
        proxy = make_proxy(
            [CrashSpec(process=0, after_events=1, down_events=0, recovery="replay")]
        )
        first = proxy.monitor
        proxy.local_event("e1")
        proxy.local_event("e2")
        assert proxy.monitor is first
        assert proxy.stats.replayed_events == 0

    def test_rejoin_replaces_monitor_and_replays_log(self):
        proxy = make_proxy(
            [CrashSpec(process=0, after_events=2, down_events=0, recovery="rejoin")]
        )
        first = proxy.monitor
        proxy.local_event("e1")
        proxy.local_event("e2")  # crash
        proxy.local_event("e3")  # restart: rejoin, replay e1+e2, then e3
        assert proxy.monitor is not first
        assert proxy.monitor.incarnation == first.incarnation + 1
        assert proxy.monitor.calls == [
            "start",
            ("event", "e1"),
            ("event", "e2"),
            ("event", "e3"),
        ]
        assert proxy.stats.replayed_events == 2

    def test_rejoin_carries_durable_facts_only(self):
        proxy = make_proxy(
            [CrashSpec(process=3, after_events=1, down_events=0, recovery="rejoin")],
            process=3,
        )
        old = proxy.monitor
        old.declared_verdicts.add("TOP")
        old.declared_states.add(7)
        old.terminated[1] = 5  # peer 1 known terminated at sn 5
        old.terminated[3] = 9  # own termination is NOT carried (rebuilt locally)
        proxy.local_event("e1")
        proxy.local_event("e2")
        fresh = proxy.monitor
        assert fresh is not old
        assert "TOP" in fresh.declared_verdicts
        assert 7 in fresh.declared_states
        assert fresh.terminated[1] == 5
        assert fresh.terminated[3] is None
        assert fresh.terminated[99] == 42  # the double's own initial state

    def test_metrics_merged_across_incarnations(self):
        proxy = make_proxy(
            [CrashSpec(process=0, after_events=1, down_events=0, recovery="rejoin")]
        )
        proxy.monitor.metrics.token_messages_sent = 3
        proxy.monitor.metrics.max_active_views = 5
        proxy.local_event("e1")
        proxy.local_event("e2")
        proxy.monitor.metrics.token_messages_sent = 2
        proxy.monitor.metrics.max_active_views = 4
        merged = proxy.metrics
        assert merged.token_messages_sent == 5  # additive
        assert merged.max_active_views == 5  # maximum, not sum


class TestFaultInjector:
    def test_unnamed_processes_stay_unwrapped(self):
        injector = FaultInjector(FaultPlan((CrashSpec(process=1, after_events=2),)), 3)
        bare = injector.wrap(0, ScriptedMonitor)
        wrapped = injector.wrap(1, lambda: ScriptedMonitor(1))
        assert isinstance(bare, ScriptedMonitor)
        assert isinstance(wrapped, MonitorFaultProxy)

    def test_proxies_share_one_stats_object(self):
        plan = FaultPlan(
            (CrashSpec(process=0, after_events=1), CrashSpec(process=1, after_events=1))
        )
        injector = FaultInjector(plan, 2)
        for process in (0, 1):
            proxy = injector.wrap(process, lambda p=process: ScriptedMonitor(p))
            proxy.local_event("e")
        assert injector.stats.crashes == 2
        assert injector.fault_stats()["fault_crashes"] == 2.0

    def test_unwrap_monitor(self):
        injector = FaultInjector(FaultPlan((CrashSpec(process=0, after_events=1),)), 1)
        proxy = injector.wrap(0, ScriptedMonitor)
        bare = ScriptedMonitor()
        assert unwrap_monitor(proxy) is proxy.monitor
        assert unwrap_monitor(bare) is bare
