"""Tests for the declarative fault-plan layer: specs, plans, the grammar."""

import json

import pytest

from repro.faults import (
    RECOVERY_POLICIES,
    RECOVERY_REJOIN,
    RECOVERY_REPLAY,
    CrashSpec,
    FaultPlan,
    FaultStats,
    format_fault_plan,
    parse_fault_plan,
)


class TestCrashSpec:
    def test_defaults(self):
        spec = CrashSpec(process=1, after_events=4)
        assert spec.down_events == 1
        assert spec.recovery == RECOVERY_REPLAY

    def test_negative_process_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrashSpec(process=-1, after_events=1)

    def test_crash_before_first_event_rejected(self):
        with pytest.raises(ValueError, match="after_events"):
            CrashSpec(process=0, after_events=0)

    def test_negative_downtime_rejected(self):
        with pytest.raises(ValueError, match="down_events"):
            CrashSpec(process=0, after_events=1, down_events=-1)

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError, match="recovery policy"):
            CrashSpec(process=0, after_events=1, recovery="pray")

    def test_known_recovery_policies(self):
        assert RECOVERY_POLICIES == (RECOVERY_REPLAY, RECOVERY_REJOIN)
        for recovery in RECOVERY_POLICIES:
            CrashSpec(process=0, after_events=1, recovery=recovery)

    def test_describe_is_json_serialisable(self):
        spec = CrashSpec(process=2, after_events=5, down_events=3, recovery="rejoin")
        description = json.loads(json.dumps(spec.describe()))
        assert description == {
            "process": 2,
            "after_events": 5,
            "down_events": 3,
            "recovery": "rejoin",
        }


class TestFaultPlan:
    def test_empty_plan_is_noop(self):
        assert FaultPlan().is_noop(3)
        assert FaultPlan().specs_for(0) == ()

    def test_out_of_range_specs_make_plan_noop(self):
        plan = FaultPlan((CrashSpec(process=7, after_events=2),))
        assert plan.is_noop(3)
        assert not plan.is_noop(8)

    def test_specs_ordered_by_process_then_trigger(self):
        plan = FaultPlan(
            (
                CrashSpec(process=1, after_events=9),
                CrashSpec(process=0, after_events=4),
                CrashSpec(process=1, after_events=2),
            )
        )
        assert [(s.process, s.after_events) for s in plan.crashes] == [
            (0, 4),
            (1, 2),
            (1, 9),
        ]

    def test_specs_for_filters_by_process(self):
        plan = FaultPlan(
            (CrashSpec(process=0, after_events=2), CrashSpec(process=1, after_events=3))
        )
        assert [s.process for s in plan.specs_for(1)] == [1]

    def test_overlapping_cycles_rejected(self):
        # the first cycle is still down (2 + 3 >= 4) when the second triggers
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                (
                    CrashSpec(process=0, after_events=2, down_events=3),
                    CrashSpec(process=0, after_events=4),
                )
            )

    def test_back_to_back_cycles_allowed(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=2, down_events=1),
                CrashSpec(process=0, after_events=4),
            )
        )
        assert len(plan.crashes) == 2

    def test_overlap_on_different_processes_allowed(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=2, down_events=5),
                CrashSpec(process=1, after_events=3),
            )
        )
        assert len(plan.crashes) == 2

    def test_describe_is_json_serialisable(self):
        plan = FaultPlan((CrashSpec(process=0, after_events=1),))
        description = json.loads(json.dumps(plan.describe()))
        assert description["crashes"][0]["process"] == 0


class TestGrammar:
    def test_parse_minimal_spec(self):
        plan = parse_fault_plan("1@4")
        assert plan.crashes == (CrashSpec(process=1, after_events=4),)

    def test_parse_full_spec(self):
        plan = parse_fault_plan("0@2+3:rejoin")
        assert plan.crashes == (
            CrashSpec(process=0, after_events=2, down_events=3, recovery="rejoin"),
        )

    def test_parse_multiple_specs_with_whitespace(self):
        plan = parse_fault_plan(" 1@4:replay , 0@2+3:rejoin ,")
        assert len(plan.crashes) == 2

    def test_parse_empty_text_gives_empty_plan(self):
        assert parse_fault_plan("") == FaultPlan()

    @pytest.mark.parametrize("text", ["nonsense", "1@", "@3", "a@b", "1@2+x"])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ValueError, match="invalid fault spec"):
            parse_fault_plan(text)

    def test_invalid_recovery_surfaces_policy_error(self):
        with pytest.raises(ValueError, match="recovery policy"):
            parse_fault_plan("1@2:pray")

    def test_format_parse_roundtrip(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=2, down_events=3, recovery="rejoin"),
                CrashSpec(process=2, after_events=5),
            )
        )
        assert parse_fault_plan(format_fault_plan(plan)) == plan

    def test_format_empty_plan(self):
        assert format_fault_plan(FaultPlan()) == ""


class TestFaultStats:
    def test_as_dict_exposes_fault_prefixed_floats(self):
        stats = FaultStats(crashes=2, restarts=2, held_messages=5)
        row = stats.as_dict()
        assert row["fault_crashes"] == 2.0
        assert row["fault_restarts"] == 2.0
        assert row["fault_held_messages"] == 5.0
        assert all(key.startswith("fault") for key in row)
        assert all(isinstance(value, float) for value in row.values())

    def test_extra_counters_merged(self):
        stats = FaultStats(extra={"fault_custom": 1.0})
        assert stats.as_dict()["fault_custom"] == 1.0
