"""Tests for the declarative fault-plan layer: specs, plans, the grammar."""

import json

import pytest

from repro.faults import (
    RECOVERY_POLICIES,
    RECOVERY_REJOIN,
    RECOVERY_REPLAY,
    SKEW_MODES,
    SKEW_SOUND,
    SKEW_UNSOUND,
    ByzantineSpec,
    ClockSkewSpec,
    CrashSpec,
    FaultPlan,
    FaultStats,
    format_fault_plan,
    parse_fault_plan,
)


class TestCrashSpec:
    def test_defaults(self):
        spec = CrashSpec(process=1, after_events=4)
        assert spec.down_events == 1
        assert spec.recovery == RECOVERY_REPLAY

    def test_negative_process_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrashSpec(process=-1, after_events=1)

    def test_crash_before_first_event_rejected(self):
        with pytest.raises(ValueError, match="after_events"):
            CrashSpec(process=0, after_events=0)

    def test_negative_downtime_rejected(self):
        with pytest.raises(ValueError, match="down_events"):
            CrashSpec(process=0, after_events=1, down_events=-1)

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError, match="recovery policy"):
            CrashSpec(process=0, after_events=1, recovery="pray")

    def test_known_recovery_policies(self):
        assert RECOVERY_POLICIES == (RECOVERY_REPLAY, RECOVERY_REJOIN)
        for recovery in RECOVERY_POLICIES:
            CrashSpec(process=0, after_events=1, recovery=recovery)

    def test_describe_is_json_serialisable(self):
        spec = CrashSpec(process=2, after_events=5, down_events=3, recovery="rejoin")
        description = json.loads(json.dumps(spec.describe()))
        assert description == {
            "process": 2,
            "after_events": 5,
            "down_events": 3,
            "recovery": "rejoin",
        }


class TestFaultPlan:
    def test_empty_plan_is_noop(self):
        assert FaultPlan().is_noop(3)
        assert FaultPlan().specs_for(0) == ()

    def test_out_of_range_specs_make_plan_noop(self):
        plan = FaultPlan((CrashSpec(process=7, after_events=2),))
        assert plan.is_noop(3)
        assert not plan.is_noop(8)

    def test_specs_ordered_by_process_then_trigger(self):
        plan = FaultPlan(
            (
                CrashSpec(process=1, after_events=9),
                CrashSpec(process=0, after_events=4),
                CrashSpec(process=1, after_events=2),
            )
        )
        assert [(s.process, s.after_events) for s in plan.crashes] == [
            (0, 4),
            (1, 2),
            (1, 9),
        ]

    def test_specs_for_filters_by_process(self):
        plan = FaultPlan(
            (CrashSpec(process=0, after_events=2), CrashSpec(process=1, after_events=3))
        )
        assert [s.process for s in plan.specs_for(1)] == [1]

    def test_overlapping_cycles_rejected(self):
        # the first cycle is still down (2 + 3 >= 4) when the second triggers
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                (
                    CrashSpec(process=0, after_events=2, down_events=3),
                    CrashSpec(process=0, after_events=4),
                )
            )

    def test_back_to_back_cycles_allowed(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=2, down_events=1),
                CrashSpec(process=0, after_events=4),
            )
        )
        assert len(plan.crashes) == 2

    def test_overlap_on_different_processes_allowed(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=2, down_events=5),
                CrashSpec(process=1, after_events=3),
            )
        )
        assert len(plan.crashes) == 2

    def test_describe_is_json_serialisable(self):
        plan = FaultPlan((CrashSpec(process=0, after_events=1),))
        description = json.loads(json.dumps(plan.describe()))
        assert description["crashes"][0]["process"] == 0


class TestGrammar:
    def test_parse_minimal_spec(self):
        plan = parse_fault_plan("1@4")
        assert plan.crashes == (CrashSpec(process=1, after_events=4),)

    def test_parse_full_spec(self):
        plan = parse_fault_plan("0@2+3:rejoin")
        assert plan.crashes == (
            CrashSpec(process=0, after_events=2, down_events=3, recovery="rejoin"),
        )

    def test_parse_multiple_specs_with_whitespace(self):
        plan = parse_fault_plan(" 1@4:replay , 0@2+3:rejoin ,")
        assert len(plan.crashes) == 2

    def test_parse_empty_text_gives_empty_plan(self):
        assert parse_fault_plan("") == FaultPlan()

    @pytest.mark.parametrize("text", ["nonsense", "1@", "@3", "a@b", "1@2+x"])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ValueError, match="invalid fault spec"):
            parse_fault_plan(text)

    def test_invalid_recovery_surfaces_policy_error(self):
        with pytest.raises(ValueError, match="recovery policy"):
            parse_fault_plan("1@2:pray")

    def test_format_parse_roundtrip(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=2, down_events=3, recovery="rejoin"),
                CrashSpec(process=2, after_events=5),
            )
        )
        assert parse_fault_plan(format_fault_plan(plan)) == plan

    def test_format_empty_plan(self):
        assert format_fault_plan(FaultPlan()) == ""


class TestAmbiguousScheduleRegression:
    """down_events=0 cycles whose restart coincides with the next crash.

    The restart of a zero-downtime cycle triggers on the arrival of event
    ``after_events + 1`` — exactly the crash trigger of a second cycle with
    ``after_events + 1``.  Which fires first used to depend on dict
    iteration details inside the proxy; such schedules are now rejected
    outright.
    """

    def test_zero_downtime_followed_by_adjacent_crash_rejected(self):
        with pytest.raises(ValueError, match="ambiguous crash schedule"):
            FaultPlan(
                (
                    CrashSpec(process=0, after_events=2, down_events=0),
                    CrashSpec(process=0, after_events=3),
                )
            )

    def test_error_names_both_cycles_and_the_event(self):
        with pytest.raises(ValueError, match="arrival of event 2"):
            FaultPlan(
                (
                    CrashSpec(process=1, after_events=1, down_events=0),
                    CrashSpec(process=1, after_events=2, down_events=1),
                )
            )

    def test_zero_downtime_with_a_gap_allowed(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=1, down_events=0),
                CrashSpec(process=0, after_events=3, down_events=0),
            )
        )
        assert len(plan.crashes) == 2

    def test_adjacent_cycles_on_other_processes_allowed(self):
        plan = FaultPlan(
            (
                CrashSpec(process=0, after_events=2, down_events=0),
                CrashSpec(process=1, after_events=3),
            )
        )
        assert len(plan.crashes) == 2

    def test_grammar_surfaces_the_rejection(self):
        with pytest.raises(ValueError, match="ambiguous crash schedule"):
            parse_fault_plan("0@2+0,0@3")


class TestByzantineSpec:
    def test_defaults_are_noop(self):
        spec = ByzantineSpec(process=0)
        assert spec.is_noop

    def test_negative_process_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ByzantineSpec(process=-1, duplicate_every=2)

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError, match="duplicate_every"):
            ByzantineSpec(process=0, duplicate_every=-1)

    def test_unit_corrupt_cadence_rejected(self):
        # cadence 1 would corrupt the very first captured token before a
        # stale copy even exists; cadences are >= 2 or 0 (disabled)
        with pytest.raises(ValueError, match="cadence"):
            ByzantineSpec(process=0, replay_every=1)

    def test_describe_is_json_serialisable(self):
        spec = ByzantineSpec(process=1, duplicate_every=3, drop_every=5)
        description = json.loads(json.dumps(spec.describe()))
        assert description["process"] == 1
        assert description["duplicate_every"] == 3

    def test_duplicate_spec_per_process_rejected(self):
        with pytest.raises(ValueError, match="duplicate ByzantineSpec"):
            FaultPlan(
                byzantine=(
                    ByzantineSpec(process=0, duplicate_every=2),
                    ByzantineSpec(process=0, drop_every=4),
                )
            )

    def test_byzantine_for_skips_noop_specs(self):
        plan = FaultPlan(
            byzantine=(
                ByzantineSpec(process=0),
                ByzantineSpec(process=1, corrupt_every=2),
            )
        )
        assert plan.byzantine_for(0) is None
        assert plan.byzantine_for(1).corrupt_every == 2
        assert plan.byzantine_for(2) is None


class TestClockSkewSpec:
    def test_modes(self):
        assert SKEW_MODES == (SKEW_SOUND, SKEW_UNSOUND)
        for mode in SKEW_MODES:
            ClockSkewSpec(mode=mode)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="skew mode"):
            ClockSkewSpec(mode="sideways")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            ClockSkewSpec(rate=-0.1)

    def test_zero_rate_is_noop(self):
        assert ClockSkewSpec(rate=0.0).is_noop
        assert not ClockSkewSpec(rate=0.1).is_noop

    def test_plan_noop_accounts_for_adversarial_parts(self):
        assert FaultPlan(clock_skew=ClockSkewSpec(rate=0.0)).is_noop(3)
        assert not FaultPlan(clock_skew=ClockSkewSpec(rate=0.5)).is_noop(3)
        assert FaultPlan(byzantine=(ByzantineSpec(process=0),)).is_noop(3)
        assert not FaultPlan(
            byzantine=(ByzantineSpec(process=0, drop_every=4),)
        ).is_noop(3)


class TestAdversarialGrammar:
    def test_parse_byzantine_chunk(self):
        plan = parse_fault_plan("1!dup3!corrupt4!replay5!drop6")
        spec = plan.byzantine[0]
        assert (spec.process, spec.duplicate_every, spec.corrupt_every) == (1, 3, 4)
        assert (spec.replay_every, spec.drop_every) == (5, 6)

    def test_parse_partial_byzantine_chunk(self):
        plan = parse_fault_plan("0!drop4")
        assert plan.byzantine == (ByzantineSpec(process=0, drop_every=4),)

    def test_parse_skew_chunk(self):
        plan = parse_fault_plan("skew@unsound~0.5~2~77")
        assert plan.clock_skew == ClockSkewSpec(
            mode=SKEW_UNSOUND, rate=0.5, magnitude=2, seed=77
        )

    def test_two_skew_chunks_rejected(self):
        with pytest.raises(ValueError, match="at most one"):
            parse_fault_plan("skew@sound~0.5~1~1,skew@sound~0.5~1~2")

    @pytest.mark.parametrize(
        "text", ["0!", "0!dup", "0!dupx", "0!warp3", "skew@fast~0.5~1~1", "skew@sound~2~1"]
    )
    def test_invalid_adversarial_chunks_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault_plan(text)

    def test_mixed_plan_roundtrip(self):
        plan = FaultPlan(
            crashes=(CrashSpec(process=0, after_events=2, down_events=3),),
            byzantine=(ByzantineSpec(process=2, duplicate_every=3, drop_every=5),),
            clock_skew=ClockSkewSpec(mode=SKEW_SOUND, rate=0.25, magnitude=1, seed=9),
        )
        assert parse_fault_plan(format_fault_plan(plan)) == plan

    def test_describe_adds_adversarial_keys_only_when_present(self):
        bare = FaultPlan((CrashSpec(process=0, after_events=1),))
        assert "byzantine" not in bare.describe()
        assert "clock_skew" not in bare.describe()
        full = FaultPlan(
            byzantine=(ByzantineSpec(process=0, corrupt_every=2),),
            clock_skew=ClockSkewSpec(),
        )
        description = json.loads(json.dumps(full.describe()))
        assert description["byzantine"][0]["corrupt_every"] == 2
        assert description["clock_skew"]["mode"] == SKEW_SOUND


class TestFaultStats:
    def test_as_dict_exposes_fault_prefixed_floats(self):
        stats = FaultStats(crashes=2, restarts=2, held_messages=5)
        row = stats.as_dict()
        assert row["fault_crashes"] == 2.0
        assert row["fault_restarts"] == 2.0
        assert row["fault_held_messages"] == 5.0
        assert all(key.startswith("fault") for key in row)
        assert all(isinstance(value, float) for value in row.values())

    def test_extra_counters_merged(self):
        stats = FaultStats(extra={"fault_custom": 1.0})
        assert stats.as_dict()["fault_custom"] == 1.0
