"""The fault-injection acceptance properties, engine and CLI integration.

Two properties gate this subsystem (both hypothesis-tested here):

1. **Fault-free plans are invisible**: running with ``faults=None``, an empty
   :class:`FaultPlan` or a plan naming only out-of-range monitors produces
   byte-identical reports — the no-op path never wraps a monitor.
2. **Backends agree under faults**: for a fixed seed and fault schedule, the
   discrete-event simulator and the asyncio streaming runtime declare the
   same verdicts — crash triggers live in local-event space, so a plan means
   the same thing on both.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionConfig, ExperimentScale, run_scenario, run_streaming
from repro.experiments.engine import run_scenario_cell
from repro.experiments.properties import case_study_registry
from repro.faults import CrashSpec, FaultPlan, parse_fault_plan
from repro.ltl import build_monitor
from repro.scenarios import GridPoint, get_scenario, list_scenarios
from repro.sim import random_computation, simulate_monitored_run

REPO_ROOT = Path(__file__).resolve().parents[2]

FORMULAS = ["F(P0.p & P1.p)", "G(P0.p U P1.q)", "G(!(P0.p & P1.q))"]

SMALL_SCALE = ExperimentScale(
    process_counts=(2, 3),
    events_per_process=4,
    replications=2,
    max_views_per_state=2,
)

#: the registered scenarios whose ``faults`` field is set
FAULT_SCENARIOS = (
    "crash-restart-replay",
    "crash-restart-rejoin",
    "crash-storm",
    "partitioned-crash",
)


def _case(num_processes, events, seed, formula_index):
    registry = case_study_registry(num_processes)
    automaton = build_monitor(FORMULAS[formula_index], atoms=registry.names)
    computation = random_computation(num_processes, events, seed=seed)
    return computation, automaton, registry


def crash_specs(num_processes):
    """Strategy for one valid crash cycle inside a *num_processes* system."""
    return st.builds(
        CrashSpec,
        process=st.integers(min_value=0, max_value=num_processes - 1),
        after_events=st.integers(min_value=1, max_value=6),
        down_events=st.integers(min_value=0, max_value=4),
        recovery=st.sampled_from(["replay", "rejoin"]),
    )


class TestFaultFreePlansAreByteIdentical:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        formula_index=st.integers(min_value=0, max_value=2),
        noop_faults=st.sampled_from(["none", "empty", "out-of-range"]),
    )
    def test_sim_reports_byte_identical(self, seed, formula_index, noop_faults):
        computation, automaton, registry = _case(3, 20, seed, formula_index)
        faults = {
            "none": None,
            "empty": FaultPlan(),
            "out-of-range": FaultPlan((CrashSpec(process=9, after_events=1),)),
        }[noop_faults]
        baseline = simulate_monitored_run(computation, automaton, registry, seed=seed)
        report = simulate_monitored_run(
            computation, automaton, registry, seed=seed, faults=faults
        )
        assert json.dumps(report.as_dict(), sort_keys=True) == json.dumps(
            baseline.as_dict(), sort_keys=True
        )

    def test_streaming_report_row_identical_for_noop_plan(self):
        computation, automaton, registry = _case(3, 15, seed=5, formula_index=0)
        baseline = run_streaming(computation, automaton, registry)
        report = run_streaming(computation, automaton, registry, faults=FaultPlan())
        base_row, row = baseline.as_dict(), report.as_dict()
        # wall-clock timing is the only legitimately nondeterministic column
        for entry in (base_row, row):
            entry.pop("wall_seconds", None)
        assert json.dumps(row, sort_keys=True) == json.dumps(base_row, sort_keys=True)

    def test_engine_cell_byte_identical_under_noop_override(self):
        scenario = get_scenario("paper-default")
        point = GridPoint("B", 3)
        baseline = run_scenario_cell(scenario, point, SMALL_SCALE, seed=2015)
        cell = run_scenario_cell(
            scenario,
            point,
            SMALL_SCALE,
            seed=2015,
            config=ExecutionConfig(fault_plan=FaultPlan()),
        )
        assert json.dumps(cell, sort_keys=True) == json.dumps(baseline, sort_keys=True)


class TestBackendsAgreeUnderFaults:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        formula_index=st.integers(min_value=0, max_value=2),
        specs=st.lists(crash_specs(3), min_size=1, max_size=3),
    )
    def test_sim_and_asyncio_declare_identical_verdicts(
        self, seed, formula_index, specs
    ):
        try:
            plan = FaultPlan(tuple(specs))
        except ValueError:
            return  # overlapping cycles: not a valid plan, nothing to compare
        computation, automaton, registry = _case(3, 20, seed, formula_index)
        simulated = simulate_monitored_run(
            computation, automaton, registry, seed=seed, faults=plan
        )
        streamed = run_streaming(computation, automaton, registry, faults=plan)
        assert streamed.declared_verdicts == simulated.declared_verdicts, (
            f"backends diverged for seed {seed}, plan {plan}"
        )
        # the plan triggered identically too: local-event space is shared
        assert streamed.fault_stats["fault_crashes"] == (
            simulated.fault_stats["fault_crashes"]
        )
        assert streamed.fault_stats["fault_restarts"] == (
            simulated.fault_stats["fault_restarts"]
        )

    def test_crashes_preserve_verdicts_against_fault_free_run(self):
        # crashing monitors delays verdicts but must never change them:
        # channels stay reliable and recovery policies preserve soundness
        computation, automaton, registry = _case(3, 30, seed=42, formula_index=0)
        baseline = simulate_monitored_run(computation, automaton, registry, seed=42)
        for recovery in ("replay", "rejoin"):
            plan = FaultPlan(
                (
                    CrashSpec(1, after_events=2, down_events=2, recovery=recovery),
                    CrashSpec(0, after_events=3, down_events=1, recovery=recovery),
                )
            )
            report = simulate_monitored_run(
                computation, automaton, registry, seed=42, faults=plan
            )
            assert report.declared_verdicts == baseline.declared_verdicts
            assert report.fault_stats["fault_crashes"] > 0

    def test_fault_schedule_agrees_on_tcp_transport_too(self):
        computation, automaton, registry = _case(3, 15, seed=23, formula_index=0)
        plan = FaultPlan((CrashSpec(0, after_events=2, down_events=2),))
        memory = run_streaming(computation, automaton, registry, faults=plan)
        tcp = run_streaming(
            computation, automaton, registry, faults=plan, transport="tcp"
        )
        assert tcp.declared_verdicts == memory.declared_verdicts
        assert tcp.fault_stats["fault_crashes"] == memory.fault_stats["fault_crashes"]


class TestFaultScenarios:
    def test_at_least_four_fault_scenarios_registered(self):
        with_faults = [s.name for s in list_scenarios() if s.faults is not None]
        assert len(with_faults) >= 4
        for name in FAULT_SCENARIOS:
            assert name in with_faults

    @pytest.mark.parametrize("name", FAULT_SCENARIOS)
    def test_fault_scenarios_execute_and_report_fault_columns(self, name):
        scale = ExperimentScale(
            process_counts=(3,),
            events_per_process=4,
            replications=2,
            max_views_per_state=2,
        )
        rows = run_scenario(name, scale)
        assert rows
        for row in rows:
            assert "fault_crashes" in row
            assert "fault_restarts" in row
        # the plans actually fired somewhere across the sweep
        assert any(row["fault_crashes"] > 0 for row in rows)

    def test_fault_scenarios_shard_identically(self):
        serial = ExperimentScale(
            process_counts=(3,), events_per_process=4, replications=2,
            max_views_per_state=2, workers=1,
        )
        sharded = ExperimentScale(
            process_counts=(3,), events_per_process=4, replications=2,
            max_views_per_state=2, workers=2,
        )
        rows_serial = run_scenario("crash-restart-replay", serial)
        rows_sharded = run_scenario("crash-restart-replay", sharded)
        assert json.dumps(rows_serial, sort_keys=True) == json.dumps(
            rows_sharded, sort_keys=True
        )

    def test_describe_embeds_fault_metadata(self):
        description = get_scenario("crash-restart-rejoin").describe()
        assert description["faults"]["kind"] == "single-crash"
        assert description["faults"]["recovery"] == "rejoin"
        assert get_scenario("paper-default").describe()["faults"] is None

    def test_explicit_fault_plan_overrides_scenario_model(self):
        scenario = get_scenario("crash-storm")
        point = GridPoint("B", 3)
        override = FaultPlan((CrashSpec(process=9, after_events=1),))  # no-op
        baseline = run_scenario_cell(
            get_scenario("paper-default"), point, SMALL_SCALE, seed=7
        )
        cell = run_scenario_cell(
            scenario,
            point,
            SMALL_SCALE,
            seed=7,
            config=ExecutionConfig(fault_plan=override),
        )
        # the override silenced the storm: identical to the fault-free cell
        assert json.dumps(cell, sort_keys=True) == json.dumps(baseline, sort_keys=True)


class TestCliFaultPlan:
    def _run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", *argv],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_run_fault_plan_smoke(self):
        result = self._run_cli(
            "run",
            "--scenario",
            "paper-default",
            "--fault-plan",
            "0@2+1:rejoin",
            "--processes",
            "3",
            "--events",
            "4",
            "--replications",
            "1",
        )
        assert result.returncode == 0, result.stderr
        assert "fault plan override: 0@2+1:rejoin" in result.stdout

    def test_run_fault_scenario_smoke(self):
        result = self._run_cli(
            "run",
            "--scenario",
            "crash-restart-replay",
            "--processes",
            "3",
            "--events",
            "4",
            "--replications",
            "1",
        )
        assert result.returncode == 0, result.stderr
        assert "crash-restart-replay" in result.stdout

    def test_invalid_fault_plan_rejected(self):
        result = self._run_cli(
            "run", "--scenario", "paper-default", "--fault-plan", "nonsense"
        )
        assert result.returncode != 0
        assert "invalid fault spec" in result.stderr

    def test_list_scenarios_shows_fault_columns(self):
        result = self._run_cli("list-scenarios")
        assert result.returncode == 0, result.stderr
        header = result.stdout.splitlines()[1]
        assert "faults" in header
        assert "recovery" in header
        assert "single-crash" in result.stdout
        assert "rolling-crash" in result.stdout
        assert "rejoin" in result.stdout

    def test_parse_fault_plan_matches_cli_grammar_documentation(self):
        # the help text advertises this exact example
        plan = parse_fault_plan("1@4+2:rejoin")
        (spec,) = plan.crashes
        assert (spec.process, spec.after_events, spec.down_events) == (1, 4, 2)
