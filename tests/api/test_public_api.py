"""The public API facade: surface completeness, shims, ExecutionConfig.

Three contracts are gated here:

1. ``repro.api.__all__`` is the supported surface — every listed name
   resolves, and ``import repro; repro.api`` works from a cold interpreter.
2. The deep imports that moved behind the facade keep working for one
   release behind :class:`DeprecationWarning` shims that resolve to the
   same objects.
3. The engine's legacy ``backend=``/``stream_transport=``/``fault_plan=``
   keywords fold into :class:`ExecutionConfig` with a deprecation warning,
   and mixing them with an explicit config is an error.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro
import repro.api as api
from repro.experiments.engine import run_scenario_cell
from repro.scenarios import GridPoint, get_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]

SMALL_SCALE = api.ExperimentScale(
    process_counts=(2,),
    events_per_process=3,
    replications=1,
    max_views_per_state=2,
)


class TestApiSurface:
    def test_every_documented_name_resolves(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert not missing

    def test_import_repro_exposes_api_lazily(self):
        # the acceptance criterion, from a cold interpreter: the top-level
        # package exposes the facade without eagerly importing the world
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro; repro.api; print(len(repro.api.__all__))",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert int(result.stdout) == len(api.__all__)

    def test_top_level_lazy_subpackages(self):
        for name in repro.__all__:
            module = getattr(repro, name)
            assert module.__name__ == f"repro.{name}"
        assert "cluster" in dir(repro)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'nonsense'"):
            repro.nonsense

    def test_compile_formula_builds_a_monitor(self):
        automaton = api.compile_formula("F(P0.p & P1.q)")
        assert automaton.num_states > 0
        assert set(api.Verdict) == {
            api.Verdict.TOP, api.Verdict.BOTTOM, api.Verdict.INCONCLUSIVE
        }

    def test_run_scenario_via_facade(self):
        rows = api.run_scenario(
            "paper-default",
            SMALL_SCALE,
            grid=api.SweepGrid(properties=("B",)),
        )
        assert len(rows) == 1
        assert rows[0]["events"] > 0

    def test_run_cluster_via_facade(self):
        rows = api.run_cluster(
            "paper-default",
            SMALL_SCALE,
            grid=api.SweepGrid(properties=("B",)),
        )
        assert len(rows) == 1
        assert rows[0]["events"] > 0


DEPRECATED_IMPORTS = [
    ("repro.experiments", "BACKENDS", "repro.experiments.engine"),
    ("repro.experiments", "run_scenario", "repro.experiments.engine"),
    ("repro.experiments", "execute_sweep", "repro.experiments.engine"),
    ("repro.runtime", "run_streaming", "repro.runtime.runner"),
]


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "package, name, home", DEPRECATED_IMPORTS,
        ids=[f"{p}.{n}" for p, n, _ in DEPRECATED_IMPORTS],
    )
    def test_deep_import_warns_and_resolves(self, package, name, home):
        import importlib

        shimmed_module = importlib.import_module(package)
        home_module = importlib.import_module(home)
        with pytest.warns(DeprecationWarning, match=f"{name}.*deprecated"):
            shimmed = getattr(shimmed_module, name)
        assert shimmed is getattr(home_module, name)

    def test_shimmed_names_stay_in_all(self):
        import repro.experiments
        import repro.runtime

        assert "run_scenario" in repro.experiments.__all__
        assert "run_streaming" in repro.runtime.__all__


class TestExecutionConfig:
    def test_legacy_keywords_warn_but_work(self):
        scenario = get_scenario("paper-default")
        with pytest.warns(DeprecationWarning, match="config=ExecutionConfig"):
            legacy = run_scenario_cell(
                scenario, GridPoint("B", 2), SMALL_SCALE, seed=7, backend="sim"
            )
        modern = run_scenario_cell(
            scenario,
            GridPoint("B", 2),
            SMALL_SCALE,
            seed=7,
            config=api.ExecutionConfig(backend="sim"),
        )
        assert legacy == modern

    def test_mixing_config_and_legacy_keywords_raises(self):
        scenario = get_scenario("paper-default")
        with pytest.raises(TypeError, match="not both"):
            run_scenario_cell(
                scenario,
                GridPoint("B", 2),
                SMALL_SCALE,
                seed=7,
                backend="sim",
                config=api.ExecutionConfig(),
            )

    def test_run_scenario_legacy_backend_keyword_warns(self):
        from repro.experiments.engine import run_scenario as engine_run_scenario

        with pytest.warns(DeprecationWarning, match="deprecated"):
            rows = engine_run_scenario(
                "paper-default",
                SMALL_SCALE,
                grid=api.SweepGrid(properties=("B",)),
                backend="sim",
            )
        assert len(rows) == 1

    def test_config_is_frozen_and_validated(self):
        config = api.ExecutionConfig(backend="asyncio", stream_transport="tcp")
        with pytest.raises(AttributeError):
            config.backend = "sim"
        with pytest.raises(ValueError, match="unknown backend"):
            api.ExecutionConfig(backend="carrier-pigeon")
